"""Asyncio serving front end with single-flight request coalescing.

The paper frames heat maps as an *interactive* exploration tool, and
interactive traffic is concurrent: many viewers pan the same hot map, a
probe batch arrives while a cold tile is still rasterizing, two dashboards
ask for the same build at once.  :class:`AsyncHeatMapService` wraps the
synchronous :class:`~repro.service.service.HeatMapService` for that
workload:

* every blocking operation (sweep, rasterize, vectorized probe batch) runs
  on a **bounded executor** (a ``ThreadPoolExecutor`` by default), so the
  event loop never blocks and a slow cold build never delays warm probes;
* concurrent requests for the same tile ``(handle, z, tx, ty, size)`` or
  the same build fingerprint **coalesce**: the first request becomes the
  *leader* and computes, the rest await the leader's future — one sweep,
  one render, K answers.  ``ServiceStats.coalesced_tiles`` /
  ``coalesced_builds`` count the saved computations and
  ``inflight_peak`` the high-water mark of distinct in-flight keys;
* a build leader that disconnects with **no followers waiting cancels its
  sweep**: the flight's ``should_cancel`` hook is polled by the engine once
  per event batch, so an abandoned cold build stops within one batch
  instead of running to completion for nobody;
* an **invalidation during flight never serves a stale result**: each
  flight captures its handle's tile *generation* at takeoff, and a leader
  that lands after the generation moved (``invalidate``, a dynamic-update
  refresh, a re-attach) discards the flight and recomputes against the
  fresh entry — every waiter gets the post-invalidation answer.

Answers are byte-identical to the synchronous service: the async layer
adds scheduling and deduplication, never computation.

Example::

    service = AsyncHeatMapService(max_workers=8, max_tiles=1024)
    handle = await service.build(clients, facilities, metric="l2")
    heats = await service.heat_at_many(handle, probes)
    await service.viewport(handle, 2, await service.world(handle))
    await service.aclose()
"""

from __future__ import annotations

import asyncio
import functools
import threading
from concurrent.futures import ThreadPoolExecutor

from ..geometry.rect import Rect
from .service import HeatMapService, request_fingerprint
from .tiles import tiles_in_window

__all__ = ["AsyncHeatMapService"]

#: A stale flight (landed after its handle's generation moved) triggers a
#: recompute; under a storm of invalidations we bound the retries and on
#: the last attempt serve the freshest value we computed — by then it
#: reflects a world no older than the caller's own request.
_MAX_STALE_RETRIES = 3


class _RetryFlight(Exception):
    """Internal: the awaited flight was abandoned; rejoin the queue."""


class _Flight:
    """One in-flight computation: the leader's future, its takeoff
    generation (for staleness detection on landing), a follower count and
    a cancellation flag.

    ``cancel`` crosses the loop/executor boundary: the executor thread's
    sweep polls ``cancel.is_set`` once per event batch, and the event loop
    sets it when the leader disconnects with nobody else waiting — the
    only case where the computation's result has no consumer left.
    """

    __slots__ = ("future", "generation", "waiters", "cancel")

    def __init__(self, loop: asyncio.AbstractEventLoop, generation: int) -> None:
        self.future: asyncio.Future = loop.create_future()
        self.generation = generation
        self.waiters = 0
        self.cancel = threading.Event()


class AsyncHeatMapService:
    """Async facade over a (thread-safe) :class:`HeatMapService`.

    Args:
        service: an existing service to wrap; by default a new one is
            created from ``**service_kwargs`` (``max_results``,
            ``max_tiles``, ``tile_size``, ``store_dir``, ``workers``).
        max_workers: bound of the default ``ThreadPoolExecutor`` the
            blocking calls run on.  Cold *builds* may additionally fan out
            to worker processes via the service's ``workers=`` setting.
        executor: bring-your-own bounded executor (then ``max_workers`` is
            ignored and :meth:`close` leaves it running).  It must share
            memory with this process — thread pools yes, process pools no.

    All coroutine methods must be awaited on one event loop; the in-flight
    maps are loop-confined (mutated only from loop callbacks), which is
    what makes the coalescing bookkeeping lock-free.  The wrapped service
    remains fully usable from plain threads at the same time.
    """

    def __init__(
        self,
        service: "HeatMapService | None" = None,
        *,
        max_workers: int = 8,
        executor=None,
        **service_kwargs,
    ) -> None:
        if service is not None and service_kwargs:
            raise TypeError(
                "pass either an existing service or HeatMapService kwargs, "
                f"not both (got {sorted(service_kwargs)})"
            )
        self.service = service if service is not None else HeatMapService(
            **service_kwargs
        )
        self._owns_executor = executor is None
        self._executor = executor if executor is not None else ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="rnnhm-serve"
        )
        #: tile key (handle, z, tx, ty, size) -> _Flight
        self._inflight_tiles: "dict[tuple, _Flight]" = {}
        #: build fingerprint -> _Flight
        self._inflight_builds: "dict[str, _Flight]" = {}

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    @property
    def stats(self):
        """The wrapped service's (shared) ``ServiceStats``."""
        return self.service.stats

    def stats_snapshot(self) -> dict:
        """See :meth:`HeatMapService.stats_snapshot`."""
        return self.service.stats_snapshot()

    def handles(self) -> "list[str]":
        """Currently resident handles (delegates to the sync service)."""
        return self.service.handles()

    async def _run(self, fn, *args):
        return await asyncio.get_running_loop().run_in_executor(
            self._executor, fn, *args
        )

    def _note_inflight(self) -> None:
        self.stats.record_inflight(
            len(self._inflight_tiles) + len(self._inflight_builds)
        )

    async def _single_flight(self, inflight: dict, key, handle: str, call,
                             coalesce_counter: str):
        """Run ``call`` once per ``key`` no matter how many callers ask.

        The first caller (leader) runs ``call`` on the executor and
        resolves the shared future with ``(value, stale)``; later callers
        (followers) bump ``coalesce_counter`` and await it.  ``stale`` is
        true when ``handle``'s generation moved during the flight — then
        everyone rejoins the queue and the computation reruns against the
        refreshed entry (bounded by ``_MAX_STALE_RETRIES``).

        ``call`` receives the flight's ``should_cancel`` hook as its one
        argument (builds thread it down to the sweep; tile renders ignore
        it).  A leader cancelled with *zero* followers sets the hook, so a
        disconnected client's abandoned sweep stops within one event batch
        instead of running to completion for nobody; with followers
        waiting, the computation is left running — the re-leading follower
        blocks on the sync layer's per-key mutex and then takes the cache
        hit the abandoned call filled.
        """
        loop = asyncio.get_running_loop()
        counted = False  # one logical request coalesces at most once
        for attempt in range(_MAX_STALE_RETRIES):
            last = attempt == _MAX_STALE_RETRIES - 1
            flight = inflight.get(key)
            if flight is not None:
                if not counted:
                    self.stats.inc(coalesce_counter)
                    counted = True
                flight.waiters += 1
                try:
                    value, stale = await flight.future
                except _RetryFlight:
                    continue
                finally:
                    flight.waiters -= 1
                if not stale or last:
                    return value
                continue
            flight = _Flight(loop, self.service.generation(handle))
            inflight[key] = flight
            self._note_inflight()
            try:
                value = await loop.run_in_executor(
                    self._executor, functools.partial(call, flight.cancel.is_set)
                )
            except BaseException as exc:
                if inflight.get(key) is flight:
                    del inflight[key]
                if not flight.future.done():
                    if isinstance(exc, asyncio.CancelledError):
                        # The leader was cancelled, not the computation's
                        # consumers: followers rejoin and re-lead.  (The
                        # sync layer's per-key mutex still guarantees the
                        # abandoned call and the re-led one don't compute
                        # twice concurrently — the re-leader blocks, then
                        # takes the cache hit.)  With no follower left the
                        # result has no consumer: tell the sweep to stop.
                        if flight.waiters == 0:
                            flight.cancel.set()
                        flight.future.set_exception(_RetryFlight())
                    else:
                        flight.future.set_exception(exc)
                    flight.future.exception()  # mark retrieved (no warning)
                raise
            stale = self.service.generation(handle) != flight.generation
            if inflight.get(key) is flight:
                del inflight[key]
            flight.future.set_result((value, stale))
            if not stale or last:
                return value
        # Every attempt ended in an abandoned flight (leaders cancelled
        # from under us): compute directly, uncoalesced.  The sync layer's
        # per-key mutex still prevents duplicate concurrent work.
        return await loop.run_in_executor(self._executor, call, None)

    # ------------------------------------------------------------------
    # Builds / registration
    # ------------------------------------------------------------------
    async def build(
        self,
        clients,
        facilities=None,
        *,
        metric: str = "l2",
        algorithm: str = "crest",
        measure=None,
        monochromatic: bool = False,
        k: int = 1,
        workers: "int | None" = None,
        fingerprint: "str | None" = None,
        engine_options: "dict | None" = None,
        should_cancel=None,
    ) -> str:
        """Build (or recall) a heat map; returns its fingerprint handle.

        Concurrent calls with the same fingerprint coalesce onto one
        sweep — ``ServiceStats.coalesced_builds`` counts the joiners.

        ``fingerprint`` skips re-hashing the coordinate arrays when the
        caller already computed this request's key (it must come from
        :func:`~repro.service.fingerprint.fingerprint_build` over these
        very arguments with the canonicalized algorithm name — the HTTP
        edge does this to key its build registry).

        ``should_cancel`` is the caller's own abort hook (e.g. a
        :meth:`~repro.faults.Deadline.should_cancel`): the engine polls
        it — OR-ed with the flight's abandoned-leader flag — once per
        event batch, so a build whose deadline expired stops burning CPU
        within one batch even while its 202-poll record stays live.
        """
        handle = fingerprint
        if handle is None:
            # Hash the coordinate arrays on the executor (O(n) for large
            # instances — it must not stall the event loop), and hand the
            # key down so the sync layer does not hash a second time.
            handle = await self._run(functools.partial(
                request_fingerprint, clients, facilities, metric=metric,
                algorithm=algorithm, measure=measure,
                monochromatic=monochromatic, k=k,
                engine_options=engine_options,
            ))

        def call(flight_cancel=None):
            if should_cancel is None:
                poll = flight_cancel
            elif flight_cancel is None:
                poll = should_cancel
            else:
                def poll() -> bool:
                    return flight_cancel() or bool(should_cancel())
            return self.service.build(
                clients, facilities, metric=metric, algorithm=algorithm,
                measure=measure, monochromatic=monochromatic, k=k,
                workers=workers, fingerprint=handle,
                engine_options=engine_options, should_cancel=poll,
            )

        return await self._single_flight(
            self._inflight_builds, handle, handle, call, "coalesced_builds"
        )

    def attach_dynamic(self, dynamic, name: "str | None" = None) -> str:
        """Register a ``DynamicHeatMap`` (delegates; the initial build runs
        inline — attach before entering the serving loop, or wrap in
        ``run_in_executor`` yourself)."""
        return self.service.attach_dynamic(dynamic, name)

    def invalidate(self, handle: str) -> None:
        """Forget one handle everywhere, including in-flight requests.

        In-flight leaders for this handle are unhooked (new requests start
        fresh flights immediately) and their landings come back stale via
        the generation bump, so no waiter is ever served a result computed
        from the pre-invalidation world.  Call from the event-loop thread.
        """
        doomed_tiles = [k for k in self._inflight_tiles if k[0] == handle]
        for k in doomed_tiles:
            del self._inflight_tiles[k]
        self._inflight_builds.pop(handle, None)
        self.service.invalidate(handle)

    # ------------------------------------------------------------------
    # Queries (executor passthroughs — no coalescing needed: they are
    # cheap vectorized reads once the handle is warm)
    # ------------------------------------------------------------------
    async def result(self, handle: str):
        """The built (refreshed, for dynamic handles) heat-map result."""
        return await self._run(self.service.result, handle)

    async def world(self, handle: str) -> Rect:
        """Original-space bounds — the level-0 tile extent."""
        return await self._run(self.service.world, handle)

    async def heat_at_many(self, handle: str, points):
        """Vectorized heat for an (n, 2) batch of original-space points."""
        return await self._run(self.service.heat_at_many, handle, points)

    async def rnn_at_many(self, handle: str, points) -> "list[frozenset]":
        """RNN set per query point (empty outside all fragments)."""
        return await self._run(self.service.rnn_at_many, handle, points)

    async def top_k_heats(self, handle: str, k: int) -> "list[float]":
        """The k largest distinct heat values of the subdivision."""
        return await self._run(self.service.top_k_heats, handle, k)

    # ------------------------------------------------------------------
    # Tiles
    # ------------------------------------------------------------------
    async def tile(
        self,
        handle: str,
        z: int,
        tx: int,
        ty: int,
        *,
        tile_size: "int | None" = None,
    ):
        """Raster tile ``(z, tx, ty)``; concurrent cold requests for one
        address coalesce onto a single render."""
        size = self.service.tile_size if tile_size is None else int(tile_size)
        key = (handle, z, tx, ty, size)

        def call(should_cancel=None):
            return self.service.tile(handle, z, tx, ty, tile_size=size)

        return await self._single_flight(
            self._inflight_tiles, key, handle, call, "coalesced_tiles"
        )

    async def placeholder_tile(
        self,
        handle: str,
        z: int,
        tx: int,
        ty: int,
        *,
        tile_size: "int | None" = None,
    ):
        """A degraded stand-in grid for a cold tile, or ``None``.

        Off-loop passthrough to
        :meth:`HeatMapService.placeholder_tile` — a cheap indexed gather
        from a cached coarser-zoom ancestor, never a render.  It does
        not coalesce and does not wait on in-flight renders: the point
        is an instant (degraded) answer while :meth:`tile` proceeds.
        """
        def call():
            return self.service.placeholder_tile(
                handle, z, tx, ty, tile_size=tile_size
            )

        return await self._run(call)

    async def viewport(
        self,
        handle: str,
        z: int,
        window: Rect,
        *,
        tile_size: "int | None" = None,
    ) -> "list[tuple[int, int]]":
        """Warm every tile covering a view window, rendering cold ones
        concurrently (and coalescing with other viewers); returns the
        tile address list."""
        world = await self._run(self.service.world, handle)
        addresses = tiles_in_window(world, z, window)
        await asyncio.gather(*(
            self.tile(handle, z, tx, ty, tile_size=tile_size)
            for tx, ty in addresses
        ))
        return addresses

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the owned executor down (waits for running work)."""
        if self._owns_executor:
            self._executor.shutdown(wait=True)

    async def aclose(self) -> None:
        """Like :meth:`close`, but off-loop (safe inside a coroutine)."""
        await asyncio.get_running_loop().run_in_executor(None, self.close)

    async def __aenter__(self) -> "AsyncHeatMapService":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.aclose()
