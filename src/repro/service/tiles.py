"""Quadtree tile addressing over a heat map's original-space bounds.

Zoom level ``z`` splits the world into ``2**z x 2**z`` axis-aligned tiles;
``(tx, ty)`` counts from the lower-left corner (x right, y up), matching
the raster convention of ``repro.render.raster`` where row 0 is the bottom
row.  A pan re-uses every tile that stays in view and a zoom-out re-uses
the coarser level's tiles — which is what makes the service's tile cache
effective across interactions.
"""

from __future__ import annotations

import math

from ..errors import InvalidInputError
from ..geometry.rect import Rect

__all__ = ["tile_bounds", "world_bounds", "tiles_in_window"]


def world_bounds(region_set) -> Rect:
    """A result's original-space extent (the level-0 tile).

    For identity-transform results this is the fragment bounding box; for
    L1 results (internal frame rotated by pi/4) the internal corners are
    mapped back through the inverse rotation.  Empty results default to
    the unit square.
    """
    internal = region_set.bounds()
    if internal is None:
        return Rect(0.0, 1.0, 0.0, 1.0)
    transform = region_set.transform
    if transform.is_identity:
        return internal
    corners = [
        transform.inverse(x, y)
        for x in (internal.x_lo, internal.x_hi)
        for y in (internal.y_lo, internal.y_hi)
    ]
    return Rect(
        min(c[0] for c in corners),
        max(c[0] for c in corners),
        min(c[1] for c in corners),
        max(c[1] for c in corners),
    )


def tile_bounds(world: Rect, z: int, tx: int, ty: int) -> Rect:
    """The original-space rectangle of tile ``(z, tx, ty)``."""
    if z < 0:
        raise InvalidInputError("zoom level must be >= 0")
    n = 1 << z
    if not (0 <= tx < n and 0 <= ty < n):
        raise InvalidInputError(
            f"tile ({tx}, {ty}) outside level-{z} range [0, {n})"
        )
    wx = (world.x_hi - world.x_lo) / n
    wy = (world.y_hi - world.y_lo) / n
    # Outermost tiles snap to the exact world edges so the level-0 tile is
    # bit-identical to the world and adjacent tiles share exact seams.
    x_lo = world.x_lo + tx * wx
    y_lo = world.y_lo + ty * wy
    x_hi = world.x_hi if tx == n - 1 else world.x_lo + (tx + 1) * wx
    y_hi = world.y_hi if ty == n - 1 else world.y_lo + (ty + 1) * wy
    return Rect(x_lo, x_hi, y_lo, y_hi)


def tiles_in_window(world: Rect, z: int, window: Rect) -> "list[tuple[int, int]]":
    """Tile coordinates at level ``z`` intersecting a view window.

    The pan/zoom helper: a client renders a viewport by requesting exactly
    these tiles, hitting the cache for every one already rendered.
    """
    if z < 0:
        raise InvalidInputError("zoom level must be >= 0")
    n = 1 << z
    wx = (world.x_hi - world.x_lo) / n
    wy = (world.y_hi - world.y_lo) / n
    if wx <= 0 or wy <= 0:
        return []
    # floor, not int(): truncation toward zero would pull windows that lie
    # entirely outside the world back onto the edge tiles.
    tx0 = max(math.floor((window.x_lo - world.x_lo) / wx), 0)
    tx1 = min(math.floor((window.x_hi - world.x_lo) / wx), n - 1)
    ty0 = max(math.floor((window.y_lo - world.y_lo) / wy), 0)
    ty1 = min(math.floor((window.y_hi - world.y_lo) / wy), n - 1)
    # A window whose high edge lands exactly on a tile seam overlaps the
    # next tile only along a zero-width line; don't include it.  The
    # ``>`` guard keeps degenerate line/point windows non-empty.
    if tx1 > tx0 and world.x_lo + tx1 * wx >= window.x_hi:
        tx1 -= 1
    if ty1 > ty0 and world.y_lo + ty1 * wy >= window.y_hi:
        ty1 -= 1
    return [
        (tx, ty)
        for ty in range(ty0, ty1 + 1)
        for tx in range(tx0, tx1 + 1)
    ]
