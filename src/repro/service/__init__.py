"""Batch-query serving layer over built heat maps.

The paper frames heat maps as an *interactive* exploration tool: build the
labeled subdivision once, then answer many cheap probes (pan, zoom, point
queries, top-k) against it.  This package is that serving architecture:

* :class:`~repro.service.service.HeatMapService` — owns built
  ``HeatMapResult`` objects keyed by an input *fingerprint* (bounded LRU,
  so identical build requests are free), serves vectorized point/RNN
  batches, top-k, threshold views, and raster *tiles* with a tile-level
  cache that survives pans and zooms.  Thread-safe: per-key single-flight
  scopes make a cold fingerprint/tile cost exactly one sweep/render under
  concurrent traffic.
* :class:`~repro.service.async_service.AsyncHeatMapService` — the asyncio
  front end: blocking work runs on a bounded executor, and concurrent
  requests for the same tile or build fingerprint *coalesce* onto one
  in-flight computation (single-flight futures, stale-on-invalidation
  retry, ``coalesced_*``/``inflight_peak`` counters).
* :mod:`~repro.service.fingerprint` — content-addressed build keys.
* :mod:`~repro.service.store` — the persistent result store: with a
  ``store_dir`` configured, LRU eviction demotes results to disk and a
  re-build with the same fingerprint promotes them back instead of
  re-sweeping.
* :mod:`~repro.service.tiles` — the quadtree tile scheme over a result's
  original-space bounds.
* :mod:`~repro.service.cache` — the small LRU primitive both caches use.

Dynamic worlds plug in through
:meth:`~repro.service.service.HeatMapService.attach_dynamic`: updates to a
``DynamicHeatMap`` bump its version counter, and the service invalidates
only that handle's cached result and tiles.
"""

from .async_service import AsyncHeatMapService
from .cache import LRUCache
from .fingerprint import fingerprint_build
from .flight import KeyedMutex
from .service import HeatMapService, ServiceStats
from .store import ResultStore
from .tiles import tile_bounds, world_bounds

__all__ = [
    "AsyncHeatMapService",
    "HeatMapService",
    "KeyedMutex",
    "LRUCache",
    "ResultStore",
    "ServiceStats",
    "fingerprint_build",
    "tile_bounds",
    "world_bounds",
]
