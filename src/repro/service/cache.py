"""A minimal thread-safe LRU cache with hit/miss counters and purging.

``HeatMapService`` uses two of these: one over built results (keyed by
fingerprint) and one over rendered raster tiles (keyed by
``(handle, z, tx, ty, tile_size)``).  ``purge`` exists so invalidating one
dynamic heat map drops only *its* tiles, leaving other tenants' entries
warm.

Every public method holds the cache's own lock, so the async serving front
end can fan probe batches and tile renders across executor threads without
corrupting the recency order; compound check-then-act sequences (refresh a
dynamic entry, then admit its tiles) are serialized one level up, in
``HeatMapService``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Hashable

__all__ = ["LRUCache"]

_MISSING = object()


class LRUCache:
    """Bounded mapping evicting the least-recently-used entry.

    Attributes:
        hits, misses, evictions: monotone counters for observability.

    Individual operations are atomic (an internal lock guards the order
    book and the counters); callers needing multi-operation atomicity must
    bring their own lock.
    """

    def __init__(self, maxsize: int) -> None:
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = int(maxsize)
        self._data: "OrderedDict[Hashable, object]" = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def get(self, key: Hashable, default=None):
        """The cached value (refreshing recency), or ``default``."""
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self.misses += 1
                return default
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def peek(self, key: Hashable, default=None):
        """The cached value without touching recency or the counters.

        For advisory probes — "would this key hit?" — that must not
        distort the LRU order or the hit/miss statistics the real
        serving path reports.
        """
        with self._lock:
            value = self._data.get(key, _MISSING)
            return default if value is _MISSING else value

    def put(self, key: Hashable, value) -> "list[tuple[Hashable, object]]":
        """Insert/refresh an entry; returns any evicted (key, value) pairs."""
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            evicted = []
            while len(self._data) > self.maxsize:
                evicted.append(self._data.popitem(last=False))
                self.evictions += 1
            return evicted

    def pop(self, key: Hashable, default=None):
        """Remove and return an entry without counting a hit or miss."""
        with self._lock:
            return self._data.pop(key, default)

    def purge(self, predicate: "Callable[[Hashable], bool]") -> int:
        """Drop every entry whose key satisfies ``predicate``."""
        with self._lock:
            doomed = [k for k in self._data if predicate(k)]
            for k in doomed:
                del self._data[k]
            return len(doomed)

    def clear(self) -> None:
        """Drop all entries (counters are kept)."""
        with self._lock:
            self._data.clear()

    def keys(self):
        """Current keys, least- to most-recently used."""
        with self._lock:
            return list(self._data.keys())
