"""Content-addressed keys for heat-map builds.

A build is fully determined by its inputs (client/facility coordinates),
the metric, the algorithm, the influence measure, the chromaticity flag and
the RkNN order — so the service keys its result cache by a SHA-256 digest
of exactly those.  Re-requesting an identical build is then a cache hit
regardless of which caller asks.
"""

from __future__ import annotations

import hashlib
import json
import pickle

import numpy as np

__all__ = ["fingerprint_build", "measure_token"]


def measure_token(measure) -> str:
    """A stable token describing an influence measure.

    ``None`` (the default size measure) and any picklable measure hash by
    *value*, so two equal configurations share cache entries.  Unpicklable
    measures fall back to identity hashing — correct, merely cache-shy.
    """
    if measure is None:
        return "size:default"
    try:
        payload = pickle.dumps(measure, protocol=4)
    except Exception:
        return f"{type(measure).__qualname__}:id:{id(measure)}"
    return f"{type(measure).__qualname__}:{hashlib.sha256(payload).hexdigest()}"


def fingerprint_build(
    clients: np.ndarray,
    facilities: "np.ndarray | None",
    *,
    metric: str,
    algorithm: str,
    measure=None,
    monochromatic: bool = False,
    k: int = 1,
    options: "dict | None" = None,
) -> str:
    """SHA-256 fingerprint of one build request (hex digest).

    ``options`` are the engine's *normalized* knobs (see
    :meth:`~repro.core.registry.EngineSpec.normalized_options`): they key
    the digest whenever non-empty, so an approximate build at
    ``recall=0.99`` never answers for one at ``recall=0.9``.  Engines
    without knobs hash exactly as they always have — existing fingerprints
    (and everything keyed by them: stores, fleets) stay stable.
    """
    h = hashlib.sha256()
    c = np.ascontiguousarray(np.asarray(clients, dtype=float))
    h.update(str(c.shape).encode())
    h.update(c.tobytes())
    if facilities is not None and not monochromatic:
        f = np.ascontiguousarray(np.asarray(facilities, dtype=float))
        h.update(str(f.shape).encode())
        h.update(f.tobytes())
    else:
        h.update(b"mono" if monochromatic else b"nofac")
    h.update(
        f"|{str(metric).lower()}|{algorithm.lower()}|{monochromatic}|{int(k)}|".encode()
    )
    h.update(measure_token(measure).encode())
    if options:
        h.update(b"|options|")
        h.update(json.dumps(options, sort_keys=True, default=repr).encode())
    return h.hexdigest()
