"""The heat-map serving facade: LRU-cached builds, batch queries, tiles.

``HeatMapService`` is the piece that turns the one-shot pipeline
(``RNNHeatMap(...).build(...)``) into an interactive backend: builds are
content-addressed and cached, point probes are answered in vectorized
batches against the flat fragment table, and raster tiles are cached at
tile granularity so pans and zooms only render what they have never seen.

Static and dynamic heat maps share one interface: ``build`` registers an
immutable result under its input fingerprint, ``attach_dynamic`` registers
a ``DynamicHeatMap`` whose version counter the service watches — an update
to one dynamic map invalidates only that handle's result and tiles,
leaving every other tenant's cache warm.  Invalidation within a handle is
*partial* when the source can bound its changes (``dirty_rects_since``):
only tiles intersecting the update's dirty region are dropped, so a
localized move re-renders a handful of tiles instead of the whole pyramid.

The service is thread-safe, so the asyncio front end
(:class:`~repro.service.async_service.AsyncHeatMapService`) can fan
requests across executor threads:

* both LRU caches take their own internal lock per operation;
* a small service lock guards compound admit/evict/generation sequences —
  never a sweep or a rasterize, so a slow cold build cannot block warm
  probes of other handles;
* cold builds and cold tile renders run under a per-key
  :class:`~repro.service.flight.KeyedMutex` scope: concurrent threads
  asking for the same fingerprint or tile serialize and the laggards hit
  the cache, so one cold key costs exactly one sweep/render;
* every handle carries a monotone *generation*, bumped whenever its tiles
  are dropped; a render that raced an invalidation sees the bump and
  declines to cache its (now possibly stale) grid.

Two tail-latency mechanisms ride on partial invalidation.  Dirty tiles
are not discarded but *displaced* into a stale store, and their next
fetch re-rasterizes only the dirty pixel windows over the retained grid
(bit-identical to a full render).  And a cold tile whose coarser-zoom
ancestor is cached can be answered instantly with a cropped+upsampled
*placeholder* (:meth:`HeatMapService.placeholder_tile`) while the real
render proceeds.  ETags live on a finer axis than the race-guard
generation: :meth:`HeatMapService.tile_generation` bumps only for tiles
a partial invalidation actually dirtied, so clean tiles keep revalidating
304 across localized updates.
"""

from __future__ import annotations

import contextlib
import math
import threading
from dataclasses import dataclass, field, fields

import numpy as np

from ..core.heatmap import HeatMapResult, RNNHeatMap
from ..core.regionset import RegionSet
from ..core.registry import REGISTRY
from ..errors import AlgorithmUnsupportedError, UnknownHandleError
from .. import faults
from ..geometry.rect import Rect
from .cache import LRUCache
from .fingerprint import fingerprint_build
from .flight import KeyedMutex
from .store import ResultStore
from .tiles import tile_bounds, tiles_in_window, world_bounds

__all__ = ["HeatMapService", "ServiceStats", "request_fingerprint"]

#: Cap on retained partial-invalidation events per handle.  Beyond it the
#: two oldest events merge into one bounding box, so per-tile generation
#: answers stay O(cap) while remaining conservative (a merged box can only
#: re-dirty tiles one of the merged events already dirtied).
_MAX_PARTIAL_EVENTS = 64

#: Cap on accumulated dirty rects per stashed stale tile.  A tile dirtied
#: by more events than this re-renders from scratch instead — past that
#: fragmentation the dirty windows cover most of the tile anyway.
_MAX_STALE_RECTS = 16

#: Engines producing the same subdivision as the serial 'crest' sweep share
#: cache keys (and disk-store entries) with it — the fingerprint carries
#: only worker-invariant configuration, and the explicit 'crest-l2' alias
#: dispatches to the very runner 'crest' uses under L2.
_CANONICAL_ALGORITHM = {
    "linf-parallel": "crest",
    "l2-parallel": "crest",
    "crest-l2": "crest",
    "l2-batched": "crest",
    "linf-batched": "crest",
}


def _canonical_algorithm(algorithm: str, metric: str) -> str:
    """The cache-key algorithm name for a build request.

    Canonicalize only when the named engine actually runs under the
    request's sweep metric — an off-metric request (e.g. 'crest-l2' under
    L-infinity) keeps its own key so the build path raises the same
    capability error it always has, instead of silently serving a cached
    'crest' result.
    """
    alg = algorithm.lower()
    target = _CANONICAL_ALGORITHM.get(alg)
    if target is None:
        return alg
    internal = "linf" if str(metric).lower() == "l1" else str(metric).lower()
    return target if REGISTRY.get(alg).supports_metric(internal) else alg


def request_fingerprint(
    clients,
    facilities=None,
    *,
    metric: str = "l2",
    algorithm: str = "crest",
    measure=None,
    monochromatic: bool = False,
    k: int = 1,
    engine_options: "dict | None" = None,
) -> str:
    """The cache key :meth:`HeatMapService.build` would assign a request.

    Canonicalizes the algorithm name and normalizes the engine's knobs
    (defaults merged, unknown knobs rejected) before hashing, so every
    front end — sync, async, HTTP — keys identical requests identically.
    """
    spec = REGISTRY.get(algorithm)
    options = spec.normalized_options(engine_options)
    canonical = _canonical_algorithm(algorithm, metric)
    return fingerprint_build(
        clients, facilities, metric=metric, algorithm=canonical,
        measure=measure, monochromatic=monochromatic, k=k, options=options,
    )


def _point_dims(points) -> int:
    """Dimension of a coordinate array (2 when it is not (n, d)-shaped —
    shape errors are the facade's to report, not the capability check's)."""
    arr = np.asarray(points)
    return int(arr.shape[1]) if arr.ndim == 2 and arr.shape[1] > 0 else 2


@dataclass
class ServiceStats:
    """Monotone counters describing one service's lifetime workload.

    ``demotions``/``promotions`` count movements between the in-memory LRU
    and the persistent result store: an eviction that spilled to disk, and
    a build request answered by reloading a spilled result.

    ``coalesced_builds``/``coalesced_tiles`` count requests that attached
    to an already in-flight identical build/render instead of starting
    their own (the async front end's single-flight maps);
    ``inflight_peak`` is the high-water mark of simultaneously in-flight
    distinct keys.

    Counters are updated through :meth:`inc` under an internal lock, so
    concurrent serving threads never lose increments and a stress run's
    numbers add up exactly.
    """

    builds: int = 0
    build_cache_hits: int = 0
    batch_queries: int = 0
    points_queried: int = 0
    tile_renders: int = 0
    tile_cache_hits: int = 0
    invalidations: int = 0
    #: Dynamic refreshes that dropped only the tiles intersecting the
    #: update's dirty region (a subset of ``invalidations``), and how many
    #: tiles those partial drops discarded in total.
    partial_invalidations: int = 0
    tiles_dropped_partial: int = 0
    #: Dirty tiles brought current by re-rasterizing only their dirty
    #: pixel windows over the retained stale grid (a subset of
    #: ``tile_renders``), instead of a from-scratch tile render.
    tile_rerenders_partial: int = 0
    #: Cold tiles answered instantly by cropping+upsampling a cached
    #: coarser-zoom ancestor while the real render proceeds elsewhere.
    placeholder_tiles: int = 0
    demotions: int = 0
    promotions: int = 0
    #: Cold builds written through to the store at build time (fleet /
    #: ``shared_store`` mode) rather than lazily on eviction.
    store_writes: int = 0
    #: Store operations that failed and were absorbed: a load that raised
    #: degrades to a cache miss (the build re-sweeps), a write-through or
    #: demotion save that raised is dropped (the result stays in memory).
    store_read_failures: int = 0
    store_write_failures: int = 0
    coalesced_builds: int = 0
    coalesced_tiles: int = 0
    inflight_peak: int = 0

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    def inc(self, name: str, n: int = 1) -> None:
        """Atomically add ``n`` to the counter ``name``."""
        with self._lock:
            setattr(self, name, getattr(self, name) + n)

    def record_inflight(self, value: int) -> None:
        """Raise ``inflight_peak`` to ``value`` if it is a new high."""
        with self._lock:
            if value > self.inflight_peak:
                self.inflight_peak = value

    def as_dict(self) -> dict:
        """The counters as a plain dict (for reports and CLI output)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass
class _Entry:
    """One registered heat map: a static result or a dynamic source."""

    result: HeatMapResult
    world: Rect
    dynamic: object = None  # DynamicHeatMap, when attached
    version: int = -1
    extras: dict = field(default_factory=dict)
    #: Serializes dynamic refreshes of this one handle, so concurrent
    #: probes trigger at most one rebuild per update batch.
    lock: threading.RLock = field(default_factory=threading.RLock, repr=False)


class HeatMapService:
    """Serve many heat maps to many probes from bounded caches.

    Args:
        max_results: LRU capacity for built heat maps.
        max_tiles: LRU capacity for rendered raster tiles.
        tile_size: default tile edge length in pixels.
        store_dir: directory for the persistent result store; when given,
            LRU eviction *demotes* static results to disk and a re-build
            with the same fingerprint *promotes* them back instead of
            re-sweeping.  Dynamic handles are never spilled (their source
            regenerates them).
        shared_store: fleet mode — ``store_dir`` is shared with other
            serving replicas.  Cold builds *write through* to the store
            at build time (not lazily on eviction), and the whole
            load-or-sweep section runs under the store's cross-process
            sweep lease, so one fingerprint is swept exactly once across
            every process sharing the directory; the others block briefly
            and promote the finished entry.  Ignored without a
            ``store_dir``.
        workers: default worker count for cold builds (see
            :class:`~repro.core.heatmap.RNNHeatMap.build`); per-call
            ``workers=`` overrides it.

    Handles returned by :meth:`build` are input fingerprints — requesting
    the same build twice returns the same handle without re-sweeping.
    Evicted (and not demoted) or never-built handles raise
    :class:`~repro.errors.UnknownHandleError` on use.

    All public methods may be called from any thread.  The observability
    hooks ``on_build(handle)`` / ``on_tile_render(key)`` — ``None`` by
    default — fire on the worker thread just *before* each actual (cache
    missing, non-coalesced) sweep / tile rasterization; tests use them to
    count and to gate renders deterministically.
    """

    def __init__(
        self,
        *,
        max_results: int = 8,
        max_tiles: int = 512,
        tile_size: int = 256,
        store_dir=None,
        shared_store: bool = False,
        workers: "int | None" = None,
    ) -> None:
        self._results = LRUCache(max_results)
        self._tiles = LRUCache(max_tiles)
        #: Dirty tiles displaced by a partial invalidation, keyed like
        #: ``_tiles``, holding ``(grid, bounds, dirty rects)`` — the raw
        #: material for incremental re-render: only the dirty pixel
        #: windows re-rasterize; the rest of the grid is reused as is.
        self._stale_tiles = LRUCache(max_tiles)
        self.tile_size = int(tile_size)
        self.store = ResultStore(store_dir) if store_dir is not None else None
        self.shared_store = bool(shared_store) and self.store is not None
        self.default_workers = workers
        self.stats = ServiceStats()
        #: Guards compound registry mutations (admit/evict/generation) —
        #: held only for dict/LRU bookkeeping, never across a sweep.
        self._lock = threading.RLock()
        #: Single-flight scopes for cold builds and cold tile renders.
        self._flights = KeyedMutex()
        #: handle -> tile generation; bumped on every tile drop.  Monotone
        #: and never deleted, so a render that started before an
        #: invalidation can always detect it raced one.
        self._gens: "dict[str, int]" = {}
        #: handle -> generation as of its last *full* drop.  Tiles start
        #: from this base; partial invalidations raise it only for tiles
        #: intersecting their dirty rects (see :meth:`tile_generation`).
        self._base_gens: "dict[str, int]" = {}
        #: handle -> [(generation, dirty rects)] for partial invalidations
        #: since the last full drop, oldest first.
        self._partial_log: "dict[str, list]" = {}
        self.on_build = None
        self.on_tile_render = None
        #: Observability hook ``on_tiles_dropped(handle, rects, world)``,
        #: fired after tiles are invalidated: ``rects`` is the partial
        #: drop's dirty rect list (with ``world`` for intersection tests)
        #: or ``None`` for a full drop.  The HTTP layer uses it to purge
        #: its encoded-PNG cache in lockstep.  May fire on any thread.
        self.on_tiles_dropped = None

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def build(
        self,
        clients: np.ndarray,
        facilities: "np.ndarray | None" = None,
        *,
        metric: str = "l2",
        algorithm: str = "crest",
        measure=None,
        monochromatic: bool = False,
        k: int = 1,
        workers: "int | None" = None,
        fingerprint: "str | None" = None,
        engine_options: "dict | None" = None,
        should_cancel=None,
    ) -> str:
        """Build (or recall) a heat map; returns its fingerprint handle.

        ``workers`` (default: the service-level setting) runs a cold build
        through the slab-partitioned multi-process pipeline.  The
        fingerprint covers worker-invariant configuration only — serial and
        parallel builds of the same inputs share one cache entry, and a
        parallel engine name ('linf-parallel'/'l2-parallel') keys the same
        entry as 'crest'.

        ``engine_options`` are the engine's knobs (e.g. ``recall`` /
        ``seed`` for the approximate engines); they are normalized against
        the :class:`~repro.core.registry.EngineSpec` defaults and *key the
        fingerprint*, so different knob settings never share a cache
        entry.  Unknown knobs raise
        :class:`~repro.errors.InvalidInputError`.  Surface-builder engines
        ('knn-graph', 'lsh-rnn') are capability-checked against the
        workload — metric, k, dimension — and dispatch to their builder;
        exact sweep engines on d != 2 data are refused with a clear
        :class:`~repro.errors.AlgorithmUnsupportedError` instead of a
        shape error.

        ``fingerprint`` skips re-hashing the coordinate arrays when the
        caller already computed this request's key (it must come from
        :func:`fingerprint_build` over these very arguments with the
        canonicalized algorithm name — the async front end does this to
        key its coalescing map).

        Concurrent calls with the same fingerprint single-flight: one
        thread sweeps while the rest wait and then take the cache hit, so
        a cold fingerprint is swept exactly once no matter how many
        threads ask for it.

        ``should_cancel`` is forwarded to the sweep engine, which polls it
        once per event batch; returning True abandons a cold build with
        :class:`~repro.errors.BuildCancelledError` (cache hits and store
        promotions are unaffected — they do no sweep work).
        """
        if workers is None:
            workers = self.default_workers
        spec = REGISTRY.get(algorithm)
        options = spec.normalized_options(engine_options)
        handle = fingerprint
        if handle is None:
            canonical = _canonical_algorithm(algorithm, metric)
            handle = fingerprint_build(
                clients, facilities, metric=metric, algorithm=canonical,
                measure=measure, monochromatic=monochromatic, k=k,
                options=options,
            )
        with self._flights.holding(("build", handle)):
            if self._results.get(handle) is not None:
                self.stats.inc("build_cache_hits")
                return handle
            # In shared_store (fleet) mode the whole load-or-sweep section
            # runs under the store's cross-process sweep lease: a replica
            # that blocked on another process's sweep wakes up to find the
            # finished entry on disk and promotes it — one sweep per
            # fingerprint across the whole fleet.
            lease = (
                self.store.sweep_lease(handle)
                if self.shared_store
                else contextlib.nullcontext()
            )
            with lease:
                if self.store is not None:
                    try:
                        promoted = self.store.load(handle)
                    except Exception:
                        # A store that cannot be read is a cache miss, not
                        # an outage: fall through to the sweep.
                        self.stats.inc("store_read_failures")
                        promoted = None
                    if promoted is not None:
                        self.stats.inc("promotions")
                        self._admit(
                            handle,
                            _Entry(promoted, world_bounds(promoted.region_set)),
                        )
                        return handle
                if self.on_build is not None:
                    self.on_build(handle)
                if spec.builder is not None:
                    spec.check_workload(
                        metric_name=str(metric).lower(), k=k,
                        dims=_point_dims(clients),
                    )
                    result = spec.builder(
                        clients, facilities, metric=metric, measure=measure,
                        monochromatic=monochromatic, k=k, options=options,
                        should_cancel=self._wrap_cancel(should_cancel),
                    )
                else:
                    dims = _point_dims(clients)
                    if dims != 2:
                        raise AlgorithmUnsupportedError(
                            f"{spec.name!r} is an exact 2-d sweep engine; "
                            f"{dims}-d data needs an approximate engine "
                            "('knn-graph')"
                        )
                    hm = RNNHeatMap(
                        clients, facilities, metric=metric, measure=measure,
                        monochromatic=monochromatic, k=k,
                    )
                    result = hm.build(
                        algorithm,
                        workers=workers,
                        should_cancel=self._wrap_cancel(should_cancel),
                    )
                self.stats.inc("builds")
                if self.shared_store:
                    # Write through while the lease is held, so waiting
                    # replicas promote instead of re-sweeping.  A failed
                    # save must not fail the build — the result is already
                    # in memory; the laggards just re-sweep.
                    try:
                        self.store.save(handle, result)
                        self.stats.inc("store_writes")
                    except Exception:
                        self.stats.inc("store_write_failures")
                self._admit(
                    handle, _Entry(result, world_bounds(result.region_set))
                )
        return handle

    @staticmethod
    def _wrap_cancel(should_cancel):
        """The engine-facing cancellation poll, with fault injection.

        With an injector installed, every per-batch poll also fires the
        ``sweep-batch`` point so chaos schedules can slow a sweep down or
        kill it mid-build; without one, the caller's callback (or None)
        passes through untouched.
        """
        if faults.get() is None:
            return should_cancel

        def poll() -> bool:
            faults.fire("sweep-batch")
            return bool(should_cancel()) if should_cancel is not None else False

        return poll

    def attach_dynamic(self, dynamic, name: "str | None" = None) -> str:
        """Register a ``DynamicHeatMap``; returns its serving handle.

        The service tracks the map's ``version`` counter and ``dirty``
        flag: updates made through the dynamic map invalidate this handle's
        cached tiles (and only this handle's) before the next query is
        answered — and only the tiles intersecting the update's dirty
        region when the map can bound it (no-op update batches invalidate
        nothing at all).
        """
        handle = name if name is not None else f"dynamic:{id(dynamic):x}"
        result = dynamic.result()
        entry = _Entry(
            result, world_bounds(result.region_set),
            dynamic=dynamic, version=dynamic.version,
        )
        self._admit(handle, entry)
        return handle

    def _admit(self, handle: str, entry: _Entry) -> None:
        with self._lock:
            if handle in self._results:
                # Overwriting a handle (e.g. re-attaching a dynamic map
                # under the same name): its old tiles describe the previous
                # world.
                self._drop_tiles(handle)
            evicted_pairs = self._results.put(handle, entry)
        for evicted_handle, evicted in evicted_pairs:
            if self.store is not None and evicted.dynamic is None:
                # Eviction becomes demotion: the fingerprint-keyed result
                # spills to disk and a later build promotes it back.  In
                # write-through (shared_store) mode the entry usually is
                # on disk already — content-addressed, so skipping the
                # duplicate save is free and loses nothing.
                try:
                    if evicted_handle not in self.store:
                        self.store.save(evicted_handle, evicted.result)
                        self.stats.inc("demotions")
                except Exception:
                    # A failed demotion just loses the spill; the next
                    # build of this fingerprint re-sweeps.
                    self.stats.inc("store_write_failures")
            self._drop_tiles(evicted_handle)

    # ------------------------------------------------------------------
    # Lookup / invalidation
    # ------------------------------------------------------------------
    def _entry(self, handle: str) -> _Entry:
        entry = self._results.get(handle)
        if entry is None:
            raise UnknownHandleError(
                f"no heat map under handle {handle!r} (never built, or evicted)"
            )
        dyn = entry.dynamic
        if dyn is None:
            return entry
        with entry.lock:
            if not (getattr(dyn, "dirty", False) or dyn.version != entry.version):
                return entry
            # The world may have moved: ask the source to rebuild (itself a
            # localized re-sweep for small updates).  A no-op update batch
            # leaves the version untouched and every cache entry warm.
            # entry.lock serializes this per handle: concurrent probes on a
            # dirty map trigger exactly one rebuild.
            result = dyn.result()
            if dyn.version != entry.version:
                old_world = entry.world
                new_world = world_bounds(result.region_set)
                rects = None
                if hasattr(dyn, "dirty_rects_since"):
                    rects = dyn.dirty_rects_since(entry.version)
                # Install the fresh result *before* bumping the generation:
                # a renderer that sees the new generation is then
                # guaranteed to also read the new result.
                entry.result = result
                entry.world = new_world
                entry.version = dyn.version
                if rects is not None and new_world == old_world:
                    # Partial invalidation: only tiles intersecting the
                    # update's dirty region are stale; the rest still
                    # rasterize to identical pixels and stay cached —
                    # and keep their per-tile generation (their ETags
                    # survive the update).  Dirty tiles move into the
                    # stale store so their next fetch re-rasterizes only
                    # the dirty pixel windows.
                    self._record_partial(handle, rects)
                    dropped = self._stash_dirty_tiles(
                        handle, entry.world, rects
                    )
                    self.stats.inc("partial_invalidations")
                    self.stats.inc("tiles_dropped_partial", dropped)
                    if self.on_tiles_dropped is not None:
                        self.on_tiles_dropped(handle, rects, entry.world)
                else:
                    # Unknown dirty region, or the world rectangle itself
                    # changed (tile addresses re-map): drop everything.
                    self._drop_tiles(handle)
                self.stats.inc("invalidations")
        return entry

    def generation(self, handle: str) -> int:
        """This handle's tile generation (bumped on every tile drop).

        A caller that captures the generation, computes something from the
        handle's result, and finds the generation unchanged afterwards
        knows no invalidation raced the computation.
        """
        with self._lock:
            return self._gens.get(handle, 0)

    def tile_generation(self, handle: str, z: int, tx: int, ty: int) -> int:
        """The generation of one tile address, for per-tile ETags.

        The handle-wide :meth:`generation` bumps on *every* drop — the
        right signal for race detection, but too coarse for cache
        validators: it would churn every tile's ETag on a localized
        update.  This is the per-tile view: a partial invalidation raises
        the generation only of tiles intersecting its dirty rects, so
        clean tiles keep revalidating 304 across updates.  Full drops
        (world change, unbounded update, re-attach) raise every tile.
        """
        with self._lock:
            base = self._base_gens.get(handle, 0)
            events = self._partial_log.get(handle)
            if not events:
                return base
            entry = self._results.peek(handle)
            if entry is None:
                # No world to intersect against: be conservative and
                # treat every tile as touched by every event.
                return self._gens.get(handle, 0)
            bounds = tile_bounds(entry.world, z, tx, ty)
            gen = base
            for event_gen, rects in events:
                if event_gen > gen and any(bounds.intersects(r) for r in rects):
                    gen = event_gen
            return gen

    def _record_partial(self, handle: str, rects) -> None:
        # Generation first (as in _drop_tiles): an in-flight render that
        # started before the bump refuses to cache a stale grid.
        with self._lock:
            gen = self._gens.get(handle, 0) + 1
            self._gens[handle] = gen
            log = self._partial_log.setdefault(handle, [])
            log.append((gen, tuple(rects)))
            if len(log) > _MAX_PARTIAL_EVENTS:
                # Merge the two oldest events: the younger generation over
                # their union bounding box.  Only tiles one of the merged
                # events already dirtied can see a (repeat) bump.
                (g0, r0), (g1, r1) = log[0], log[1]
                box = r0[0]
                for r in (*r0[1:], *r1):
                    box = box.union_bounds(r)
                log[:2] = [(max(g0, g1), (box,))]

    def _stash_dirty_tiles(self, handle: str, world: Rect, rects) -> int:
        """Displace tiles intersecting ``rects`` into the stale store.

        Returns how many live tiles were displaced.  Each stashed entry
        keeps the stale grid plus the dirty rects that hit it; a tile
        already stashed by an earlier event accumulates the new rects
        (and is dropped outright past ``_MAX_STALE_RECTS`` — re-render
        from scratch beats chasing a shredded tile).
        """
        dropped = 0
        stashed = set()
        for key in self._tiles.keys():
            if key[0] != handle:
                continue
            bounds = tile_bounds(world, key[1], key[2], key[3])
            hits = tuple(r for r in rects if bounds.intersects(r))
            if not hits:
                continue
            cached = self._tiles.pop(key)
            if cached is None:
                continue
            dropped += 1
            stashed.add(key)
            grid, tile_rect = cached
            self._stale_tiles.put(key, (grid, tile_rect, hits))
        for key in self._stale_tiles.keys():
            if key[0] != handle or key in stashed:
                continue
            bounds = tile_bounds(world, key[1], key[2], key[3])
            hits = tuple(r for r in rects if bounds.intersects(r))
            if not hits:
                continue
            stale = self._stale_tiles.pop(key)
            if stale is None:
                continue
            grid, tile_rect, old_hits = stale
            merged = (*old_hits, *hits)
            if len(merged) <= _MAX_STALE_RECTS:
                self._stale_tiles.put(key, (grid, tile_rect, merged))
        return dropped

    def _drop_tiles(self, handle: str) -> None:
        # Generation first: an in-flight render that started before the
        # bump will refuse to cache into the freshly purged space.
        with self._lock:
            gen = self._gens.get(handle, 0) + 1
            self._gens[handle] = gen
            self._base_gens[handle] = gen
            self._partial_log.pop(handle, None)
        self._tiles.purge(lambda key: key[0] == handle)
        self._stale_tiles.purge(lambda key: key[0] == handle)
        if self.on_tiles_dropped is not None:
            self.on_tiles_dropped(handle, None, None)

    def invalidate(self, handle: str) -> None:
        """Forget one handle's result, tiles and any disk-stored copy
        (no-op when unknown)."""
        with self._lock:
            self._results.pop(handle)
            self._drop_tiles(handle)
        if self.store is not None:
            self.store.delete(handle)

    def handles(self) -> "list[str]":
        """Currently resident handles, least- to most-recently used."""
        return self._results.keys()

    def stats_snapshot(self) -> dict:
        """All observability counters in one flat dict.

        Extends :meth:`ServiceStats.as_dict` with the two LRU caches'
        hit/miss/eviction counters and the persistent store's population —
        the numbers an operator needs to size ``max_results``/``max_tiles``.
        """
        d = self.stats.as_dict()
        d.update(
            result_lru_hits=self._results.hits,
            result_lru_misses=self._results.misses,
            result_lru_evictions=self._results.evictions,
            tile_lru_hits=self._tiles.hits,
            tile_lru_misses=self._tiles.misses,
            tile_lru_evictions=self._tiles.evictions,
            stored_results=len(self.store.handles()) if self.store else 0,
            store_corruptions=self.store.corruptions if self.store else 0,
        )
        return d

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def result(self, handle: str) -> HeatMapResult:
        """The built (refreshed, for dynamic handles) heat-map result."""
        return self._entry(handle).result

    def world(self, handle: str) -> Rect:
        """Original-space bounds — the level-0 tile extent."""
        return self._entry(handle).world

    def heat_at_many(self, handle: str, points) -> np.ndarray:
        """Vectorized heat for an (n, 2) batch of original-space points."""
        entry = self._entry(handle)
        pts = np.asarray(points, dtype=float)
        out = entry.result.region_set.heat_at_many(pts)
        self.stats.inc("batch_queries")
        self.stats.inc("points_queried", len(out))
        return out

    def rnn_at_many(self, handle: str, points) -> "list[frozenset]":
        """RNN set per query point (empty outside all fragments)."""
        entry = self._entry(handle)
        out = entry.result.region_set.rnn_at_many(points)
        self.stats.inc("batch_queries")
        self.stats.inc("points_queried", len(out))
        return out

    def top_k_heats(self, handle: str, k: int) -> "list[float]":
        """The k largest distinct heat values of the subdivision."""
        return self._entry(handle).result.region_set.top_k_heats(k)

    def threshold(self, handle: str, min_heat: float) -> RegionSet:
        """A view keeping only fragments with heat >= ``min_heat``."""
        return self._entry(handle).result.region_set.threshold(min_heat)

    # ------------------------------------------------------------------
    # Tiles
    # ------------------------------------------------------------------
    def tile(
        self,
        handle: str,
        z: int,
        tx: int,
        ty: int,
        *,
        tile_size: "int | None" = None,
    ) -> "tuple[np.ndarray, Rect]":
        """Raster tile ``(z, tx, ty)`` as a (size, size) heat grid.

        Tiles are cached per (handle, address, size); repeated pans and
        zooms over the same area render nothing.  Row 0 is the bottom row,
        as in ``RegionSet.rasterize``.

        Concurrent cold requests for the same tile single-flight: one
        thread renders while the rest wait for the cache fill.  A render
        that raced an invalidation of this handle returns its (then
        current) grid to the caller but does not cache it, so the tile
        cache never serves a pre-invalidation raster.
        """
        size = self.tile_size if tile_size is None else int(tile_size)
        key = (handle, z, tx, ty, size)
        with self._flights.holding(("tile", key)):
            self._entry(handle)  # settle any pending dynamic refresh first
            cached = self._tiles.get(key)
            if cached is not None:
                self.stats.inc("tile_cache_hits")
                return cached
            # Capture the generation *before* fetching the entry we render
            # from: if the generation is still unchanged at admission time,
            # no invalidation/re-attach landed anywhere in between, so the
            # rendered grid provably describes the current world.  (The
            # settle call above keeps an ordinary post-refresh render
            # cacheable — the refresh's own bump happened before capture.)
            generation = self.generation(handle)
            entry = self._entry(handle)
            if self.on_tile_render is not None:
                self.on_tile_render(key)
            bounds = tile_bounds(entry.world, z, tx, ty)
            # A tile displaced by a partial invalidation re-renders
            # incrementally: reuse the stale grid and re-rasterize only
            # its dirty pixel windows — bit-identical to a full render.
            stale = self._stale_tiles.pop(key)
            grid = None
            if stale is not None:
                grid = self._rerender_stale(entry, bounds, size, stale)
            if grid is not None:
                self.stats.inc("tile_rerenders_partial")
            else:
                grid, bounds = entry.result.rasterize(size, size, bounds)
            self.stats.inc("tile_renders")
            if self.generation(handle) == generation:
                self._tiles.put(key, (grid, bounds))
            return grid, bounds

    def _rerender_stale(self, entry, bounds, size, stale):
        """The incremental tile render, or None to fall back to a full one.

        Re-rasterizes each dirty rect's (conservatively rounded) pixel
        window over a copy of the stale grid.  Pixels outside every dirty
        rect rasterize to identical values by the partial-invalidation
        contract, and the windowed rasterizer is bit-identical to the
        full one, so the patched grid equals a from-scratch render.
        """
        grid, tile_rect, rects = stale
        if tile_rect != bounds:
            return None  # the world moved under the stash
        if not entry.result.region_set.transform.is_identity:
            # Rotated (L1) rendering is dominated by the internal-frame
            # paint, which a pixel window cannot shrink: no savings.
            return None
        x_span = bounds.x_hi - bounds.x_lo
        y_span = bounds.y_hi - bounds.y_lo
        if x_span <= 0 or y_span <= 0:
            return None
        # Never patch in place: the stale array may still be aliased by
        # callers that fetched the tile before the invalidation.
        out = grid.copy()
        for r in rects:
            c0 = max(int(math.floor((r.x_lo - bounds.x_lo) / x_span * size)), 0)
            c1 = min(int(math.ceil((r.x_hi - bounds.x_lo) / x_span * size)), size)
            r0 = max(int(math.floor((r.y_lo - bounds.y_lo) / y_span * size)), 0)
            r1 = min(int(math.ceil((r.y_hi - bounds.y_lo) / y_span * size)), size)
            if c1 <= c0 or r1 <= r0:
                continue
            sub, _ = entry.result.rasterize(
                size, size, bounds, window=(r0, r1, c0, c1)
            )
            out[r0:r1, c0:c1] = sub
        return out

    def placeholder_tile(
        self,
        handle: str,
        z: int,
        tx: int,
        ty: int,
        *,
        tile_size: "int | None" = None,
    ) -> "tuple[np.ndarray, Rect, int] | None":
        """A degraded stand-in grid for a cold tile, served instantly.

        When tile ``(z, tx, ty)`` is not cached but a coarser-zoom
        ancestor is, crop the covering ``1/2^dz`` portion of the nearest
        cached ancestor and upsample it (nearest-neighbor at pixel
        centers) to full tile size — no rasterization, just an indexed
        gather.  Returns ``(grid, bounds, source_z)`` or ``None`` when
        the real tile is already cached (serve that), a displaced stale
        grid awaits a cheap incremental re-render, or no ancestor is
        cached.  Never renders and never touches the tile cache's LRU
        order, so it is safe to call opportunistically on the hot path.
        """
        size = self.tile_size if tile_size is None else int(tile_size)
        entry = self._entry(handle)
        key = (handle, z, tx, ty, size)
        if self._tiles.peek(key) is not None:
            return None
        if self._stale_tiles.peek(key) is not None:
            return None
        bounds = tile_bounds(entry.world, z, tx, ty)
        for dz in range(1, z + 1):
            az, atx, aty = z - dz, tx >> dz, ty >> dz
            cached = self._tiles.peek((handle, az, atx, aty, size))
            if cached is None:
                continue
            agrid, _arect = cached
            n = 1 << dz
            fx, fy = tx - (atx << dz), ty - (aty << dz)
            # Ancestor texel under each output pixel center.
            u = (fx + (np.arange(size) + 0.5) / size) / n
            v = (fy + (np.arange(size) + 0.5) / size) / n
            cols = np.minimum((u * size).astype(int), size - 1)
            rows = np.minimum((v * size).astype(int), size - 1)
            self.stats.inc("placeholder_tiles")
            return agrid[np.ix_(rows, cols)], bounds, az
        return None

    def viewport(
        self,
        handle: str,
        z: int,
        window: Rect,
        *,
        tile_size: "int | None" = None,
    ) -> "list[tuple[int, int]]":
        """Warm the tile cache for a view window; returns the tile list.

        The pan/zoom entry point: clients ask for the tiles covering their
        viewport and the service renders only the cold ones.
        """
        entry = self._entry(handle)
        addresses = tiles_in_window(entry.world, z, window)
        for tx, ty in addresses:
            self.tile(handle, z, tx, ty, tile_size=tile_size)
        return addresses
