"""The heat-map serving facade: LRU-cached builds, batch queries, tiles.

``HeatMapService`` is the piece that turns the one-shot pipeline
(``RNNHeatMap(...).build(...)``) into an interactive backend: builds are
content-addressed and cached, point probes are answered in vectorized
batches against the flat fragment table, and raster tiles are cached at
tile granularity so pans and zooms only render what they have never seen.

Static and dynamic heat maps share one interface: ``build`` registers an
immutable result under its input fingerprint, ``attach_dynamic`` registers
a ``DynamicHeatMap`` whose version counter the service watches — an update
to one dynamic map invalidates only that handle's result and tiles,
leaving every other tenant's cache warm.  Invalidation within a handle is
*partial* when the source can bound its changes (``dirty_rects_since``):
only tiles intersecting the update's dirty region are dropped, so a
localized move re-renders a handful of tiles instead of the whole pyramid.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.heatmap import HeatMapResult, RNNHeatMap
from ..core.regionset import RegionSet
from ..core.registry import REGISTRY
from ..errors import UnknownHandleError
from ..geometry.rect import Rect
from .cache import LRUCache
from .fingerprint import fingerprint_build
from .store import ResultStore
from .tiles import tile_bounds, tiles_in_window, world_bounds

__all__ = ["HeatMapService", "ServiceStats"]

#: Engines producing the same subdivision as the serial 'crest' sweep share
#: cache keys (and disk-store entries) with it — the fingerprint carries
#: only worker-invariant configuration, and the explicit 'crest-l2' alias
#: dispatches to the very runner 'crest' uses under L2.
_CANONICAL_ALGORITHM = {
    "linf-parallel": "crest",
    "l2-parallel": "crest",
    "crest-l2": "crest",
}


def _canonical_algorithm(algorithm: str, metric: str) -> str:
    """The cache-key algorithm name for a build request.

    Canonicalize only when the named engine actually runs under the
    request's sweep metric — an off-metric request (e.g. 'crest-l2' under
    L-infinity) keeps its own key so the build path raises the same
    capability error it always has, instead of silently serving a cached
    'crest' result.
    """
    alg = algorithm.lower()
    target = _CANONICAL_ALGORITHM.get(alg)
    if target is None:
        return alg
    internal = "linf" if str(metric).lower() == "l1" else str(metric).lower()
    return target if REGISTRY.get(alg).supports_metric(internal) else alg


@dataclass
class ServiceStats:
    """Monotone counters describing one service's lifetime workload.

    ``demotions``/``promotions`` count movements between the in-memory LRU
    and the persistent result store: an eviction that spilled to disk, and
    a build request answered by reloading a spilled result.
    """

    builds: int = 0
    build_cache_hits: int = 0
    batch_queries: int = 0
    points_queried: int = 0
    tile_renders: int = 0
    tile_cache_hits: int = 0
    invalidations: int = 0
    #: Dynamic refreshes that dropped only the tiles intersecting the
    #: update's dirty region (a subset of ``invalidations``), and how many
    #: tiles those partial drops discarded in total.
    partial_invalidations: int = 0
    tiles_dropped_partial: int = 0
    demotions: int = 0
    promotions: int = 0

    def as_dict(self) -> dict:
        """The counters as a plain dict (for reports and CLI output)."""
        return dict(vars(self))


@dataclass
class _Entry:
    """One registered heat map: a static result or a dynamic source."""

    result: HeatMapResult
    world: Rect
    dynamic: object = None  # DynamicHeatMap, when attached
    version: int = -1
    extras: dict = field(default_factory=dict)


class HeatMapService:
    """Serve many heat maps to many probes from bounded caches.

    Args:
        max_results: LRU capacity for built heat maps.
        max_tiles: LRU capacity for rendered raster tiles.
        tile_size: default tile edge length in pixels.
        store_dir: directory for the persistent result store; when given,
            LRU eviction *demotes* static results to disk and a re-build
            with the same fingerprint *promotes* them back instead of
            re-sweeping.  Dynamic handles are never spilled (their source
            regenerates them).
        workers: default worker count for cold builds (see
            :class:`~repro.core.heatmap.RNNHeatMap.build`); per-call
            ``workers=`` overrides it.

    Handles returned by :meth:`build` are input fingerprints — requesting
    the same build twice returns the same handle without re-sweeping.
    Evicted (and not demoted) or never-built handles raise
    :class:`~repro.errors.UnknownHandleError` on use.
    """

    def __init__(
        self,
        *,
        max_results: int = 8,
        max_tiles: int = 512,
        tile_size: int = 256,
        store_dir=None,
        workers: "int | None" = None,
    ) -> None:
        self._results = LRUCache(max_results)
        self._tiles = LRUCache(max_tiles)
        self.tile_size = int(tile_size)
        self.store = ResultStore(store_dir) if store_dir is not None else None
        self.default_workers = workers
        self.stats = ServiceStats()

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def build(
        self,
        clients: np.ndarray,
        facilities: "np.ndarray | None" = None,
        *,
        metric: str = "l2",
        algorithm: str = "crest",
        measure=None,
        monochromatic: bool = False,
        k: int = 1,
        workers: "int | None" = None,
    ) -> str:
        """Build (or recall) a heat map; returns its fingerprint handle.

        ``workers`` (default: the service-level setting) runs a cold build
        through the slab-partitioned multi-process pipeline.  The
        fingerprint covers worker-invariant configuration only — serial and
        parallel builds of the same inputs share one cache entry, and a
        parallel engine name ('linf-parallel'/'l2-parallel') keys the same
        entry as 'crest'.
        """
        if workers is None:
            workers = self.default_workers
        canonical = _canonical_algorithm(algorithm, metric)
        handle = fingerprint_build(
            clients, facilities, metric=metric, algorithm=canonical,
            measure=measure, monochromatic=monochromatic, k=k,
        )
        if self._results.get(handle) is not None:
            self.stats.build_cache_hits += 1
            return handle
        if self.store is not None:
            promoted = self.store.load(handle)
            if promoted is not None:
                self.stats.promotions += 1
                self._admit(
                    handle, _Entry(promoted, world_bounds(promoted.region_set))
                )
                return handle
        hm = RNNHeatMap(
            clients, facilities, metric=metric, measure=measure,
            monochromatic=monochromatic, k=k,
        )
        result = hm.build(algorithm, workers=workers)
        self.stats.builds += 1
        self._admit(handle, _Entry(result, world_bounds(result.region_set)))
        return handle

    def attach_dynamic(self, dynamic, name: "str | None" = None) -> str:
        """Register a ``DynamicHeatMap``; returns its serving handle.

        The service tracks the map's ``version`` counter and ``dirty``
        flag: updates made through the dynamic map invalidate this handle's
        cached tiles (and only this handle's) before the next query is
        answered — and only the tiles intersecting the update's dirty
        region when the map can bound it (no-op update batches invalidate
        nothing at all).
        """
        handle = name if name is not None else f"dynamic:{id(dynamic):x}"
        result = dynamic.result()
        entry = _Entry(
            result, world_bounds(result.region_set),
            dynamic=dynamic, version=dynamic.version,
        )
        self._admit(handle, entry)
        return handle

    def _admit(self, handle: str, entry: _Entry) -> None:
        if handle in self._results:
            # Overwriting a handle (e.g. re-attaching a dynamic map under
            # the same name): its old tiles describe the previous world.
            self._drop_tiles(handle)
        for evicted_handle, evicted in self._results.put(handle, entry):
            if self.store is not None and evicted.dynamic is None:
                # Eviction becomes demotion: the fingerprint-keyed result
                # spills to disk and a later build promotes it back.
                self.store.save(evicted_handle, evicted.result)
                self.stats.demotions += 1
            self._drop_tiles(evicted_handle)

    # ------------------------------------------------------------------
    # Lookup / invalidation
    # ------------------------------------------------------------------
    def _entry(self, handle: str) -> _Entry:
        entry = self._results.get(handle)
        if entry is None:
            raise UnknownHandleError(
                f"no heat map under handle {handle!r} (never built, or evicted)"
            )
        dyn = entry.dynamic
        if dyn is not None and (
            getattr(dyn, "dirty", False) or dyn.version != entry.version
        ):
            # The world may have moved: ask the source to rebuild (itself a
            # localized re-sweep for small updates).  A no-op update batch
            # leaves the version untouched and every cache entry warm.
            result = dyn.result()
            if dyn.version != entry.version:
                new_world = world_bounds(result.region_set)
                rects = None
                if hasattr(dyn, "dirty_rects_since"):
                    rects = dyn.dirty_rects_since(entry.version)
                if rects is not None and new_world == entry.world:
                    # Partial invalidation: only tiles intersecting the
                    # update's dirty region are stale; the rest still
                    # rasterize to identical pixels and stay cached.
                    dropped = self._tiles.purge(
                        lambda key: key[0] == handle and any(
                            tile_bounds(
                                entry.world, key[1], key[2], key[3]
                            ).intersects(r)
                            for r in rects
                        )
                    )
                    self.stats.partial_invalidations += 1
                    self.stats.tiles_dropped_partial += dropped
                else:
                    # Unknown dirty region, or the world rectangle itself
                    # changed (tile addresses re-map): drop everything.
                    self._drop_tiles(handle)
                entry.result = result
                entry.world = new_world
                entry.version = dyn.version
                self.stats.invalidations += 1
        return entry

    def _drop_tiles(self, handle: str) -> None:
        self._tiles.purge(lambda key: key[0] == handle)

    def invalidate(self, handle: str) -> None:
        """Forget one handle's result, tiles and any disk-stored copy
        (no-op when unknown)."""
        self._results.pop(handle)
        self._drop_tiles(handle)
        if self.store is not None:
            self.store.delete(handle)

    def handles(self) -> "list[str]":
        """Currently resident handles, least- to most-recently used."""
        return self._results.keys()

    def stats_snapshot(self) -> dict:
        """All observability counters in one flat dict.

        Extends :meth:`ServiceStats.as_dict` with the two LRU caches'
        hit/miss/eviction counters and the persistent store's population —
        the numbers an operator needs to size ``max_results``/``max_tiles``.
        """
        d = self.stats.as_dict()
        d.update(
            result_lru_hits=self._results.hits,
            result_lru_misses=self._results.misses,
            result_lru_evictions=self._results.evictions,
            tile_lru_hits=self._tiles.hits,
            tile_lru_misses=self._tiles.misses,
            tile_lru_evictions=self._tiles.evictions,
            stored_results=len(self.store.handles()) if self.store else 0,
        )
        return d

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def result(self, handle: str) -> HeatMapResult:
        """The built (refreshed, for dynamic handles) heat-map result."""
        return self._entry(handle).result

    def world(self, handle: str) -> Rect:
        """Original-space bounds — the level-0 tile extent."""
        return self._entry(handle).world

    def heat_at_many(self, handle: str, points) -> np.ndarray:
        """Vectorized heat for an (n, 2) batch of original-space points."""
        entry = self._entry(handle)
        pts = np.asarray(points, dtype=float)
        out = entry.result.region_set.heat_at_many(pts)
        self.stats.batch_queries += 1
        self.stats.points_queried += len(out)
        return out

    def rnn_at_many(self, handle: str, points) -> "list[frozenset]":
        """RNN set per query point (empty outside all fragments)."""
        entry = self._entry(handle)
        out = entry.result.region_set.rnn_at_many(points)
        self.stats.batch_queries += 1
        self.stats.points_queried += len(out)
        return out

    def top_k_heats(self, handle: str, k: int) -> "list[float]":
        """The k largest distinct heat values of the subdivision."""
        return self._entry(handle).result.region_set.top_k_heats(k)

    def threshold(self, handle: str, min_heat: float) -> RegionSet:
        """A view keeping only fragments with heat >= ``min_heat``."""
        return self._entry(handle).result.region_set.threshold(min_heat)

    # ------------------------------------------------------------------
    # Tiles
    # ------------------------------------------------------------------
    def tile(
        self,
        handle: str,
        z: int,
        tx: int,
        ty: int,
        *,
        tile_size: "int | None" = None,
    ) -> "tuple[np.ndarray, Rect]":
        """Raster tile ``(z, tx, ty)`` as a (size, size) heat grid.

        Tiles are cached per (handle, address, size); repeated pans and
        zooms over the same area render nothing.  Row 0 is the bottom row,
        as in ``RegionSet.rasterize``.
        """
        size = self.tile_size if tile_size is None else int(tile_size)
        entry = self._entry(handle)  # refreshes dynamic handles first
        key = (handle, z, tx, ty, size)
        cached = self._tiles.get(key)
        if cached is not None:
            self.stats.tile_cache_hits += 1
            return cached
        bounds = tile_bounds(entry.world, z, tx, ty)
        grid, bounds = entry.result.rasterize(size, size, bounds)
        self.stats.tile_renders += 1
        self._tiles.put(key, (grid, bounds))
        return grid, bounds

    def viewport(
        self,
        handle: str,
        z: int,
        window: Rect,
        *,
        tile_size: "int | None" = None,
    ) -> "list[tuple[int, int]]":
        """Warm the tile cache for a view window; returns the tile list.

        The pan/zoom entry point: clients ask for the tiles covering their
        viewport and the service renders only the cold ones.
        """
        entry = self._entry(handle)
        addresses = tiles_in_window(entry.world, z, window)
        for tx, ty in addresses:
            self.tile(handle, z, tx, ty, tile_size=tile_size)
        return addresses
