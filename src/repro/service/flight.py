"""Per-key mutual exclusion: the sync layer's single-flight primitive.

``HeatMapService`` wraps each cold build (keyed by fingerprint) and each
cold tile render (keyed by tile address) in a :class:`KeyedMutex` scope.
Concurrent threads asking for the *same* key serialize — the second thread
blocks until the first finishes, re-checks the cache, and hits — while
requests for different keys proceed in parallel.  That is what makes "K
concurrent cold requests execute exactly one sweep/render" hold even for
callers that bypass the asyncio front end and hammer the service from raw
threads.

Locks are created on demand and dropped as soon as the last holder or
waiter releases, so the map never outgrows the number of keys currently in
flight.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Hashable

__all__ = ["KeyedMutex"]


class KeyedMutex:
    """A family of mutexes addressed by hashable key, created on demand."""

    def __init__(self) -> None:
        self._meta = threading.Lock()
        #: key -> [lock, holders+waiters]; entries die at refcount zero.
        self._locks: "dict[Hashable, list]" = {}

    def __len__(self) -> int:
        """Number of keys currently locked or waited on."""
        with self._meta:
            return len(self._locks)

    @contextmanager
    def holding(self, key: Hashable):
        """Context manager: exclusive ownership of ``key``'s mutex."""
        with self._meta:
            pair = self._locks.get(key)
            if pair is None:
                pair = self._locks[key] = [threading.Lock(), 0]
            pair[1] += 1
        pair[0].acquire()
        try:
            yield
        finally:
            pair[0].release()
            with self._meta:
                pair[1] -= 1
                # The pair can only be recreated after it is popped, and it
                # is only popped here at refcount zero — so identity holds.
                if pair[1] == 0 and self._locks.get(key) is pair:
                    del self._locks[key]
