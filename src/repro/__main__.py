"""Allow ``python -m repro`` as an alias for the ``rnnhm`` CLI."""

import sys

from .cli import main

sys.exit(main())
