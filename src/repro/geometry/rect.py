"""Axis-aligned rectangles.

The paper denotes by [x, x', y, y'] the rectangle with diagonally opposite
corners (x, y) and (x', y'); subregions formed by the sweep are *open*
rectangles (Section V-A), and degenerate rectangles with y == y' bound no
points.  This module provides the small value type used throughout.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Rect"]


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle [x_lo, x_hi] x [y_lo, y_hi]."""

    x_lo: float
    x_hi: float
    y_lo: float
    y_hi: float

    def __post_init__(self) -> None:
        if self.x_lo > self.x_hi or self.y_lo > self.y_hi:
            raise ValueError(f"malformed rectangle {self}")

    @classmethod
    def from_center_radius(cls, cx: float, cy: float, r: float) -> "Rect":
        """The L-infinity ball (square) of radius ``r`` centered at (cx, cy)."""
        return cls(cx - r, cx + r, cy - r, cy + r)

    @property
    def width(self) -> float:
        return self.x_hi - self.x_lo

    @property
    def height(self) -> float:
        return self.y_hi - self.y_lo

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> "tuple[float, float]":
        return ((self.x_lo + self.x_hi) / 2.0, (self.y_lo + self.y_hi) / 2.0)

    @property
    def is_degenerate(self) -> bool:
        """True when the rectangle has no interior (a segment or a point)."""
        return self.x_lo == self.x_hi or self.y_lo == self.y_hi

    def contains_open(self, x: float, y: float) -> bool:
        """Membership in the open rectangle (paper's subregion semantics)."""
        return self.x_lo < x < self.x_hi and self.y_lo < y < self.y_hi

    def contains_closed(self, x: float, y: float) -> bool:
        return self.x_lo <= x <= self.x_hi and self.y_lo <= y <= self.y_hi

    def intersects(self, other: "Rect") -> bool:
        """Closed-rectangle intersection test (touching counts)."""
        return not (
            other.x_lo > self.x_hi
            or other.x_hi < self.x_lo
            or other.y_lo > self.y_hi
            or other.y_hi < self.y_lo
        )

    def intersection(self, other: "Rect") -> "Rect | None":
        """The overlapping rectangle, or None when disjoint."""
        x_lo = max(self.x_lo, other.x_lo)
        x_hi = min(self.x_hi, other.x_hi)
        y_lo = max(self.y_lo, other.y_lo)
        y_hi = min(self.y_hi, other.y_hi)
        if x_lo > x_hi or y_lo > y_hi:
            return None
        return Rect(x_lo, x_hi, y_lo, y_hi)

    def union_bounds(self, other: "Rect") -> "Rect":
        """The smallest rectangle containing both."""
        return Rect(
            min(self.x_lo, other.x_lo),
            max(self.x_hi, other.x_hi),
            min(self.y_lo, other.y_lo),
            max(self.y_hi, other.y_hi),
        )

    def expanded(self, margin: float) -> "Rect":
        """A copy grown by ``margin`` on every side."""
        return Rect(
            self.x_lo - margin,
            self.x_hi + margin,
            self.y_lo - margin,
            self.y_hi + margin,
        )
