"""Exact analytics for arrangements of axis-aligned squares.

Section VI of the paper bounds CREST's number of region labelings k by the
number of regions r in the arrangement (Lemma 3: r <= k <= 14r) using the
Euler characteristic v - e + r - c = 1, where r counts regions *including*
the exterior face.  This module computes v, e, c and r exactly for a set of
squares in general position (shared corners are fine; collinear overlapping
sides are rejected), which the test suite uses to validate the bound and the
worst-case construction of Fig. 8 (r = n^2 - n + 2).

Complexity is O(n^2 log n) — this is an *oracle* for tests and analytics,
not a production path.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ReproError
from .circle import NNCircleSet

__all__ = ["ArrangementStats", "square_arrangement_stats", "DegenerateArrangementError"]


class DegenerateArrangementError(ReproError):
    """Raised when sides overlap collinearly (region count would need
    symbolic perturbation; CREST itself handles such inputs, this exact
    counter does not)."""


@dataclass(frozen=True)
class ArrangementStats:
    """Exact counts for an arrangement of square boundaries."""

    n_squares: int
    vertices: int
    edges: int
    components: int

    @property
    def regions(self) -> int:
        """Faces of the subdivision including the exterior (paper's r)."""
        return self.edges - self.vertices + 1 + self.components


class _UnionFind:
    def __init__(self, n: int) -> None:
        self.parent = list(range(n))

    def find(self, a: int) -> int:
        p = self.parent
        while p[a] != a:
            p[a] = p[p[a]]
            a = p[a]
        return a

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[ra] = rb

    def count(self) -> int:
        return len({self.find(i) for i in range(len(self.parent))})


def square_arrangement_stats(circles: NNCircleSet) -> ArrangementStats:
    """Compute exact (v, e, c, r) for an arrangement of L-infinity NN-circles.

    Args:
        circles: square NN-circles (metric must induce squares).

    Raises:
        DegenerateArrangementError: if two sides overlap collinearly.
    """
    n = len(circles)
    if n == 0:
        return ArrangementStats(0, 0, 0, 0)

    # Segments: (orientation, fixed coord, lo, hi, square index)
    # orientation 0 = vertical (fixed x), 1 = horizontal (fixed y).
    segments = []
    for i in range(n):
        xl = float(circles.x_lo[i])
        xh = float(circles.x_hi[i])
        yl = float(circles.y_lo[i])
        yh = float(circles.y_hi[i])
        segments.append((0, xl, yl, yh, i))
        segments.append((0, xh, yl, yh, i))
        segments.append((1, yl, xl, xh, i))
        segments.append((1, yh, xl, xh, i))

    _check_no_collinear_overlap(segments)

    verticals = [s for s in segments if s[0] == 0]
    horizontals = [s for s in segments if s[0] == 1]

    # Split points per segment; vertices as exact coordinate tuples.
    split_points: "list[set[tuple[float, float]]]" = []
    seg_index = {}
    for k, seg in enumerate(segments):
        seg_index[id(seg)] = k
        if seg[0] == 0:
            pts = {(seg[1], seg[2]), (seg[1], seg[3])}
        else:
            pts = {(seg[2], seg[1]), (seg[3], seg[1])}
        split_points.append(pts)

    vertices: "set[tuple[float, float]]" = set()
    for pts in split_points:
        vertices.update(pts)

    uf = _UnionFind(n)
    vs = [(s, k) for k, s in enumerate(segments) if s[0] == 0]
    hs = [(s, k) for k, s in enumerate(segments) if s[0] == 1]
    for (v, kv) in vs:
        _, x, vy_lo, vy_hi, si = v
        for (h, kh) in hs:
            _, y, hx_lo, hx_hi, sj = h
            if hx_lo <= x <= hx_hi and vy_lo <= y <= vy_hi:
                p = (x, y)
                vertices.add(p)
                split_points[kv].add(p)
                split_points[kh].add(p)
                if si != sj:
                    uf.union(si, sj)

    # Corner-on-corner contacts between different squares also connect them.
    corner_owner: "dict[tuple[float, float], int]" = {}
    for i in range(n):
        for p in (
            (float(circles.x_lo[i]), float(circles.y_lo[i])),
            (float(circles.x_lo[i]), float(circles.y_hi[i])),
            (float(circles.x_hi[i]), float(circles.y_lo[i])),
            (float(circles.x_hi[i]), float(circles.y_hi[i])),
        ):
            if p in corner_owner and corner_owner[p] != i:
                uf.union(corner_owner[p], i)
            corner_owner[p] = i

    edges = 0
    for k, seg in enumerate(segments):
        # Points on a segment are collinear; count gaps between sorted points.
        edges += len(split_points[k]) - 1

    return ArrangementStats(n, len(vertices), edges, uf.count())


def _check_no_collinear_overlap(segments) -> None:
    """Reject arrangements where two parallel sides share more than a point."""
    by_line: "dict[tuple[int, float], list[tuple[float, float]]]" = {}
    for orient, fixed, lo, hi, _si in segments:
        by_line.setdefault((orient, fixed), []).append((lo, hi))
    for (orient, fixed), spans in by_line.items():
        if len(spans) < 2:
            continue
        spans.sort()
        for (lo1, hi1), (lo2, hi2) in zip(spans, spans[1:]):
            if lo2 < hi1:
                axis = "x" if orient == 0 else "y"
                raise DegenerateArrangementError(
                    f"collinear overlapping sides on {axis}={fixed}"
                )


def worst_case_circles(n: int) -> NNCircleSet:
    """The adversarial arrangement of Fig. 8: n squares of side length n with
    the i-th centered at (i, i); it attains r = n^2 - n + 2 regions."""
    import numpy as np

    centers = np.arange(1, n + 1, dtype=float)
    radius = np.full(n, n / 2.0)
    return NNCircleSet(centers, centers, radius, "linf")
