"""Planar geometry substrate: metrics, rectangles, NN-circles, arcs,
transforms, and exact arrangement analytics."""

from .arcs import Arc, circle_intersections
from .arrangement import (
    ArrangementStats,
    DegenerateArrangementError,
    square_arrangement_stats,
    worst_case_circles,
)
from .circle import NNCircle, NNCircleSet
from .disk_arrangement import (
    DegenerateDiskArrangementError,
    DiskArrangementStats,
    disk_arrangement_stats,
)
from .metrics import L1, L2, LINF, METRICS, Metric, get_metric
from .rect import Rect
from .transforms import IDENTITY, ROTATE_L1_TO_LINF, Rotation, Transform

__all__ = [
    "Arc",
    "ArrangementStats",
    "DegenerateArrangementError",
    "DegenerateDiskArrangementError",
    "DiskArrangementStats",
    "disk_arrangement_stats",
    "IDENTITY",
    "L1",
    "L2",
    "LINF",
    "METRICS",
    "Metric",
    "NNCircle",
    "NNCircleSet",
    "ROTATE_L1_TO_LINF",
    "Rect",
    "Rotation",
    "Transform",
    "circle_intersections",
    "get_metric",
    "square_arrangement_stats",
    "worst_case_circles",
]
