"""NN-circles: metric balls centered at clients with radius = NN distance.

An NN-circle C(o) (Section III-A) is the ball centered at client ``o`` whose
radius is the distance from ``o`` to its nearest facility.  A query point q
has o in its RNN set exactly when q lies in the *closed* C(o); since the
algorithms label open regions, open/closed containment never disagrees on
points they actually label.

``NNCircleSet`` is the columnar (struct-of-arrays) form consumed by every
algorithm; ``NNCircle`` is a convenience view for a single circle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..errors import InvalidInputError
from .metrics import Metric, get_metric
from .rect import Rect

__all__ = ["NNCircle", "NNCircleSet"]


@dataclass(frozen=True)
class NNCircle:
    """A single NN-circle: ``client_id`` is the index of its center in O."""

    client_id: int
    cx: float
    cy: float
    radius: float
    metric: Metric

    def contains(self, x: float, y: float) -> bool:
        """Closed containment: d(center, q) <= radius."""
        return self.metric.distance((self.cx, self.cy), (x, y)) <= self.radius

    @property
    def bbox(self) -> Rect:
        """Axis-aligned bounding box (for L-infinity this is the circle)."""
        return Rect.from_center_radius(self.cx, self.cy, self.radius)


class NNCircleSet:
    """A columnar collection of NN-circles under one metric.

    Attributes:
        cx, cy, radius: float64 arrays of shape (n,).
        client_ids: int array of shape (n,) mapping circles back to client
            indices (circles with radius 0 are dropped at construction:
            they bound no area, see DESIGN.md degeneracies).
        metric: the metric all circles share.
    """

    def __init__(
        self,
        cx: np.ndarray,
        cy: np.ndarray,
        radius: np.ndarray,
        metric: "Metric | str",
        client_ids: "np.ndarray | None" = None,
        drop_degenerate: bool = True,
    ) -> None:
        cx = np.asarray(cx, dtype=float)
        cy = np.asarray(cy, dtype=float)
        radius = np.asarray(radius, dtype=float)
        if cx.shape != cy.shape or cx.shape != radius.shape or cx.ndim != 1:
            raise InvalidInputError("cx, cy, radius must be equal-length 1-D arrays")
        if not (np.isfinite(cx).all() and np.isfinite(cy).all()):
            raise InvalidInputError("circle centers must be finite")
        if not np.isfinite(radius).all() or (radius < 0).any():
            raise InvalidInputError("radii must be finite and non-negative")
        if client_ids is None:
            client_ids = np.arange(len(cx))
        else:
            client_ids = np.asarray(client_ids, dtype=np.int64)
            if client_ids.shape != cx.shape:
                raise InvalidInputError("client_ids must match circle count")
        self.n_degenerate = 0
        if drop_degenerate:
            keep = radius > 0.0
            self.n_degenerate = int((~keep).sum())
            if self.n_degenerate:
                cx, cy, radius = cx[keep], cy[keep], radius[keep]
                client_ids = client_ids[keep]
        self.cx = cx
        self.cy = cy
        self.radius = radius
        self.client_ids = client_ids
        self.metric = get_metric(metric)

    def __len__(self) -> int:
        return len(self.cx)

    def __getitem__(self, i: int) -> NNCircle:
        return NNCircle(
            int(self.client_ids[i]),
            float(self.cx[i]),
            float(self.cy[i]),
            float(self.radius[i]),
            self.metric,
        )

    def __iter__(self) -> Iterator[NNCircle]:
        for i in range(len(self)):
            yield self[i]

    # Side coordinate arrays (paper notation: x_i, x-bar_i, y_i, y-bar_i).
    @property
    def x_lo(self) -> np.ndarray:
        return self.cx - self.radius

    @property
    def x_hi(self) -> np.ndarray:
        return self.cx + self.radius

    @property
    def y_lo(self) -> np.ndarray:
        return self.cy - self.radius

    @property
    def y_hi(self) -> np.ndarray:
        return self.cy + self.radius

    def bounds(self) -> Rect:
        """Bounding box of all circles; raises on an empty set."""
        if len(self) == 0:
            raise InvalidInputError("empty NNCircleSet has no bounds")
        return Rect(
            float(self.x_lo.min()),
            float(self.x_hi.max()),
            float(self.y_lo.min()),
            float(self.y_hi.max()),
        )

    def enclosing(self, x: float, y: float) -> "list[int]":
        """Client ids of all circles (closed) containing (x, y), brute force.

        This is the reference oracle used by tests and the naive RNN query;
        production paths use the enclosure indexes or the sweep.
        """
        q = np.array([x, y], dtype=float)
        pts = np.column_stack([self.cx, self.cy])
        d = self.metric.pairwise_to_point(pts, q)
        mask = d <= self.radius
        return [int(c) for c in self.client_ids[mask]]

    def contains_any(self, x: float, y: float) -> bool:
        return bool(self.enclosing(x, y))
