"""Distance metrics used by the RNN heat map problem.

The paper considers three metrics in the plane (Section III): L-infinity
(NN-circles are axis-aligned squares), L1 (diamonds) and L2 (disks).  Each
metric is exposed as a small object bundling scalar and vectorized distance
functions plus metadata about the NN-circle shape it induces.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..errors import UnknownMetricError

__all__ = ["Metric", "L1", "L2", "LINF", "get_metric", "METRICS"]


@dataclass(frozen=True)
class Metric:
    """A planar distance metric.

    Attributes:
        name: canonical lowercase name ('l1', 'l2', 'linf').
        p: the Minkowski exponent (1, 2 or math.inf), for kd-tree backends.
        circle_shape: shape of the NN-circle this metric induces.
        distance: scalar distance between two (x, y) pairs.
        pairwise_to_point: vectorized distances from an (n, 2) array to a point.
    """

    name: str
    p: float
    circle_shape: str
    distance: Callable[[tuple, tuple], float]
    pairwise_to_point: Callable[[np.ndarray, np.ndarray], np.ndarray]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Metric({self.name!r})"


def _dist_l1(p, q) -> float:
    return abs(p[0] - q[0]) + abs(p[1] - q[1])


def _dist_l2(p, q) -> float:
    return math.hypot(p[0] - q[0], p[1] - q[1])


def _dist_linf(p, q) -> float:
    return max(abs(p[0] - q[0]), abs(p[1] - q[1]))


def _arr_l1(points: np.ndarray, q: np.ndarray) -> np.ndarray:
    d = np.abs(points - q)
    return d[:, 0] + d[:, 1]


def _arr_l2(points: np.ndarray, q: np.ndarray) -> np.ndarray:
    d = points - q
    return np.sqrt(d[:, 0] ** 2 + d[:, 1] ** 2)


def _arr_linf(points: np.ndarray, q: np.ndarray) -> np.ndarray:
    d = np.abs(points - q)
    return np.maximum(d[:, 0], d[:, 1])


L1 = Metric("l1", 1.0, "diamond", _dist_l1, _arr_l1)
L2 = Metric("l2", 2.0, "disk", _dist_l2, _arr_l2)
LINF = Metric("linf", math.inf, "square", _dist_linf, _arr_linf)

METRICS = {"l1": L1, "l2": L2, "linf": LINF}

_ALIASES = {
    "l_1": "l1",
    "manhattan": "l1",
    "l_2": "l2",
    "euclidean": "l2",
    "l_inf": "linf",
    "linfinity": "linf",
    "chebyshev": "linf",
    "loo": "linf",
}


def get_metric(name: "str | Metric") -> Metric:
    """Resolve a metric by name (accepting common aliases) or pass through.

    Raises:
        UnknownMetricError: if the name is not recognized.
    """
    if isinstance(name, Metric):
        return name
    key = str(name).strip().lower().replace("-", "").replace(" ", "")
    key = _ALIASES.get(key, key)
    try:
        return METRICS[key]
    except KeyError:
        raise UnknownMetricError(
            f"unknown metric {name!r}; expected one of {sorted(METRICS)}"
        ) from None
