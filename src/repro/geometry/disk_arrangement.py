"""Exact analytics for arrangements of disks (the L2 counterpart of
``arrangement.py``).

For circles in general position (no tangencies, no three circles through a
point, no identical circles), the arrangement's counts follow from the
Euler characteristic exactly as in Lemma 3's proof:

* vertices v  = number of pairwise boundary intersection points,
* edges   e   = number of boundary arcs = sum over circles of
                max(#vertices on that circle, 1 if it is cut, else 0)
                — a circle crossed t times contributes t arcs; an
                uncrossed circle contributes one closed curve (counted as
                a component with zero vertices, handled separately),
* faces   r   = e - v + 1 + c   (including the exterior face).

Used by tests and diagnostics to sanity-check CREST-L2's labeling counts
the way the square analytics back the L-infinity engine.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ReproError
from .arcs import circle_intersections
from .circle import NNCircleSet
from ..index.grid import UniformGridIndex

__all__ = ["DiskArrangementStats", "disk_arrangement_stats", "DegenerateDiskArrangementError"]


class DegenerateDiskArrangementError(ReproError):
    """Raised on tangencies, identical circles, or >2 circles meeting at a
    point — configurations needing symbolic perturbation to count exactly."""


@dataclass(frozen=True)
class DiskArrangementStats:
    n_circles: int
    vertices: int
    edges: int
    components: int

    @property
    def regions(self) -> int:
        """Faces including the exterior (r in the paper's notation)."""
        return self.edges - self.vertices + 1 + self.components


class _UnionFind:
    def __init__(self, n: int) -> None:
        self.parent = list(range(n))

    def find(self, a: int) -> int:
        while self.parent[a] != a:
            self.parent[a] = self.parent[self.parent[a]]
            a = self.parent[a]
        return a

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[ra] = rb

    def count(self) -> int:
        return len({self.find(i) for i in range(len(self.parent))})


def disk_arrangement_stats(circles: NNCircleSet) -> DiskArrangementStats:
    """Exact (v, e, c, r) for disks in general position.

    Raises:
        DegenerateDiskArrangementError: on tangency, coincident circles or
            coincident intersection points.
    """
    n = len(circles)
    if n == 0:
        return DiskArrangementStats(0, 0, 0, 0)
    cx, cy, rr = circles.cx, circles.cy, circles.radius

    for i in range(n):
        for j in range(i + 1, n):
            if cx[i] == cx[j] and cy[i] == cy[j] and rr[i] == rr[j]:
                raise DegenerateDiskArrangementError(
                    f"identical circles {i} and {j}"
                )

    grid = UniformGridIndex(circles.x_lo, circles.x_hi, circles.y_lo, circles.y_hi)
    uf = _UnionFind(n)
    points_on: "list[int]" = [0] * n
    all_points: "set[tuple[float, float]]" = set()
    vertices = 0
    for i, j in grid.intersecting_pairs():
        pts = circle_intersections(
            float(cx[i]), float(cy[i]), float(rr[i]),
            float(cx[j]), float(cy[j]), float(rr[j]),
        )
        if len(pts) == 1:
            raise DegenerateDiskArrangementError(f"tangent circles {i}, {j}")
        if not pts:
            continue
        for p in pts:
            key = (round(p[0], 12), round(p[1], 12))
            if key in all_points:
                raise DegenerateDiskArrangementError(
                    f"three circles through one point near {key}"
                )
            all_points.add(key)
        vertices += 2
        points_on[i] += 2
        points_on[j] += 2
        uf.union(i, j)

    # Edges: a circle with t >= 1 vertices carries t arcs; a circle with no
    # vertices is a closed curve bounding by itself (0 vertices, 1 "edge"
    # that is a loop).  Euler with loops: count each uncrossed circle as its
    # own component contributing e = v = 0 and +1 face via the component
    # term — equivalently treat the loop as one vertexless edge and adjust.
    # We use the component formulation: loops add c, not e.
    edges = sum(t for t in points_on if t > 0)
    components = uf.count()
    return DiskArrangementStats(n, vertices, edges, components)
