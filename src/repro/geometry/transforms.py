"""Plane transforms, primarily the pi/4 rotation that maps L1 to L-infinity.

Section VII-B of the paper: in two dimensions the L1 metric is equivalent to
L-infinity after rotating the coordinate system by pi/4 — diamonds become
squares (up to a uniform scale factor of 1/sqrt(2), which rescales all
distances identically and therefore preserves every nearest-neighbor
relation).  CREST runs unchanged in the rotated frame; results carry the
transform so queries and rasters can be mapped back.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["Transform", "IDENTITY", "ROTATE_L1_TO_LINF", "Rotation"]


@dataclass(frozen=True)
class Transform:
    """An invertible affine map of the plane (rotation + uniform scale)."""

    name: str = "identity"

    def forward(self, x: float, y: float) -> "tuple[float, float]":
        return (x, y)

    def inverse(self, x: float, y: float) -> "tuple[float, float]":
        return (x, y)

    def forward_array(self, points: np.ndarray) -> np.ndarray:
        return np.asarray(points, dtype=float)

    def inverse_array(self, points: np.ndarray) -> np.ndarray:
        return np.asarray(points, dtype=float)

    @property
    def is_identity(self) -> bool:
        return True


@dataclass(frozen=True)
class Rotation(Transform):
    """Rotation about the origin by ``theta`` radians (no scaling).

    Rotation is an isometry for L2 but, crucially for the paper's reduction,
    rotating by pi/4 turns L1 balls into L-infinity balls: for any points
    p, q it holds that d_inf(Rp, Rq) = d_1(p, q) / sqrt(2), so nearest
    neighbors (and hence NN-circles and RNN sets) are preserved.
    """

    theta: float = 0.0

    def _cs(self) -> "tuple[float, float]":
        return math.cos(self.theta), math.sin(self.theta)

    def forward(self, x: float, y: float) -> "tuple[float, float]":
        c, s = self._cs()
        return (x * c - y * s, x * s + y * c)

    def inverse(self, x: float, y: float) -> "tuple[float, float]":
        c, s = self._cs()
        return (x * c + y * s, -x * s + y * c)

    def forward_array(self, points: np.ndarray) -> np.ndarray:
        pts = np.asarray(points, dtype=float)
        c, s = self._cs()
        out = np.empty_like(pts)
        out[:, 0] = pts[:, 0] * c - pts[:, 1] * s
        out[:, 1] = pts[:, 0] * s + pts[:, 1] * c
        return out

    def inverse_array(self, points: np.ndarray) -> np.ndarray:
        pts = np.asarray(points, dtype=float)
        c, s = self._cs()
        out = np.empty_like(pts)
        out[:, 0] = pts[:, 0] * c + pts[:, 1] * s
        out[:, 1] = -pts[:, 0] * s + pts[:, 1] * c
        return out

    @property
    def is_identity(self) -> bool:
        return self.theta == 0.0


IDENTITY = Transform()

#: The rotation used to solve L1 instances with the L-infinity sweep.
ROTATE_L1_TO_LINF = Rotation(name="rotate_pi_over_4", theta=math.pi / 4)

#: Scale factor linking the two metrics: d_inf(Rp, Rq) == d_1(p, q) * this.
L1_TO_LINF_SCALE = 1.0 / math.sqrt(2.0)
