"""Circular-arc geometry for the L2 variant of CREST (Section VII-C).

With the L2 metric NN-circles are disks; the sweep's line elements are the
upper/lower semicircular arcs of those disks.  Between two consecutive
events an arc is y-monotone, and the vertical cross-section of a disk at
abscissa x is exactly [lower_arc(x), upper_arc(x)].
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "Arc",
    "LOWER_ARC",
    "UPPER_ARC",
    "circle_intersections",
    "circle_intersections_many",
]

LOWER_ARC = 0
UPPER_ARC = 1


@dataclass(frozen=True)
class Arc:
    """One semicircular arc (upper or lower) of an NN-circle boundary.

    ``circle_idx`` indexes into the NNCircleSet; ``kind`` is LOWER_ARC or
    UPPER_ARC.  The arc spans x in [cx - r, cx + r].
    """

    circle_idx: int
    kind: int
    cx: float
    cy: float
    r: float

    @property
    def uid(self) -> int:
        """Stable integer id (2*circle + kind), the paper's record key scheme."""
        return 2 * self.circle_idx + self.kind

    @property
    def x_lo(self) -> float:
        return self.cx - self.r

    @property
    def x_hi(self) -> float:
        return self.cx + self.r

    def y_at(self, x: float) -> float:
        """The arc's y-coordinate at abscissa ``x`` (clamped to the span).

        Clamping guards against floating-point drift when ``x`` sits exactly
        on an event shared with the circle's extreme points.
        """
        dx = x - self.cx
        if dx < -self.r:
            dx = -self.r
        elif dx > self.r:
            dx = self.r
        h = math.sqrt(max(self.r * self.r - dx * dx, 0.0))
        return self.cy - h if self.kind == LOWER_ARC else self.cy + h


def circle_intersections(
    cx1: float, cy1: float, r1: float, cx2: float, cy2: float, r2: float
) -> "list[tuple[float, float]]":
    """Intersection points of two circle *boundaries* (0, 1 or 2 points).

    Standard radical-line construction.  Tangency returns a single point;
    identical circles return [] (their boundaries overlap everywhere, a
    degeneracy the sweep handles through consistent tie-breaking instead).
    """
    dx = cx2 - cx1
    dy = cy2 - cy1
    d2 = dx * dx + dy * dy
    if d2 == 0.0:
        return []
    d = math.sqrt(d2)
    if d > r1 + r2 or d < abs(r1 - r2):
        return []
    # Distance from center 1 to the radical line along the center line.
    a = (r1 * r1 - r2 * r2 + d2) / (2.0 * d)
    h2 = r1 * r1 - a * a
    mx = cx1 + a * dx / d
    my = cy1 + a * dy / d
    if h2 <= 0.0:
        return [(mx, my)]
    h = math.sqrt(h2)
    ox = -dy * (h / d)
    oy = dx * (h / d)
    return [(mx + ox, my + oy), (mx - ox, my - oy)]


def circle_intersections_many(cx1, cy1, r1, cx2, cy2, r2):
    """Vectorized :func:`circle_intersections` over pair arrays.

    Every arithmetic step mirrors the scalar radical-line construction
    operation for operation, so the returned coordinates are bit-identical
    to per-pair scalar calls.  Returns ``(count, px0, py0, px1, py1)``:
    ``count`` in {0, 1, 2} per pair; a tangency stores its single point in
    ``(px0, py0)``; the first point of a 2-point pair is the ``+h`` offset
    one, matching the scalar return order.
    """
    cx1 = np.asarray(cx1, dtype=float)
    cy1 = np.asarray(cy1, dtype=float)
    r1 = np.asarray(r1, dtype=float)
    cx2 = np.asarray(cx2, dtype=float)
    cy2 = np.asarray(cy2, dtype=float)
    r2 = np.asarray(r2, dtype=float)
    dx = cx2 - cx1
    dy = cy2 - cy1
    d2 = dx * dx + dy * dy
    with np.errstate(divide="ignore", invalid="ignore"):
        d = np.sqrt(d2)
        valid = (d2 != 0.0) & ~(d > r1 + r2) & ~(d < np.abs(r1 - r2))
        a = (r1 * r1 - r2 * r2 + d2) / (2.0 * d)
        h2 = r1 * r1 - a * a
        mx = cx1 + a * dx / d
        my = cy1 + a * dy / d
        tangent = h2 <= 0.0
        h = np.sqrt(np.where(tangent, 0.0, h2))
        hd = h / d
        ox = -dy * hd
        oy = dx * hd
    count = np.where(valid, np.where(tangent, 1, 2), 0).astype(np.int64)
    px0 = np.where(tangent, mx, mx + ox)
    py0 = np.where(tangent, my, my + oy)
    px1 = mx - ox
    py1 = my - oy
    return count, px0, py0, px1, py1
