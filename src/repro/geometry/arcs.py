"""Circular-arc geometry for the L2 variant of CREST (Section VII-C).

With the L2 metric NN-circles are disks; the sweep's line elements are the
upper/lower semicircular arcs of those disks.  Between two consecutive
events an arc is y-monotone, and the vertical cross-section of a disk at
abscissa x is exactly [lower_arc(x), upper_arc(x)].
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["Arc", "LOWER_ARC", "UPPER_ARC", "circle_intersections"]

LOWER_ARC = 0
UPPER_ARC = 1


@dataclass(frozen=True)
class Arc:
    """One semicircular arc (upper or lower) of an NN-circle boundary.

    ``circle_idx`` indexes into the NNCircleSet; ``kind`` is LOWER_ARC or
    UPPER_ARC.  The arc spans x in [cx - r, cx + r].
    """

    circle_idx: int
    kind: int
    cx: float
    cy: float
    r: float

    @property
    def uid(self) -> int:
        """Stable integer id (2*circle + kind), the paper's record key scheme."""
        return 2 * self.circle_idx + self.kind

    @property
    def x_lo(self) -> float:
        return self.cx - self.r

    @property
    def x_hi(self) -> float:
        return self.cx + self.r

    def y_at(self, x: float) -> float:
        """The arc's y-coordinate at abscissa ``x`` (clamped to the span).

        Clamping guards against floating-point drift when ``x`` sits exactly
        on an event shared with the circle's extreme points.
        """
        dx = x - self.cx
        if dx < -self.r:
            dx = -self.r
        elif dx > self.r:
            dx = self.r
        h = math.sqrt(max(self.r * self.r - dx * dx, 0.0))
        return self.cy - h if self.kind == LOWER_ARC else self.cy + h


def circle_intersections(
    cx1: float, cy1: float, r1: float, cx2: float, cy2: float, r2: float
) -> "list[tuple[float, float]]":
    """Intersection points of two circle *boundaries* (0, 1 or 2 points).

    Standard radical-line construction.  Tangency returns a single point;
    identical circles return [] (their boundaries overlap everywhere, a
    degeneracy the sweep handles through consistent tie-breaking instead).
    """
    dx = cx2 - cx1
    dy = cy2 - cy1
    d2 = dx * dx + dy * dy
    if d2 == 0.0:
        return []
    d = math.sqrt(d2)
    if d > r1 + r2 or d < abs(r1 - r2):
        return []
    # Distance from center 1 to the radical line along the center line.
    a = (r1 * r1 - r2 * r2 + d2) / (2.0 * d)
    h2 = r1 * r1 - a * a
    mx = cx1 + a * dx / d
    my = cy1 + a * dy / d
    if h2 <= 0.0:
        return [(mx, my)]
    h = math.sqrt(h2)
    ox = -dy * (h / d)
    oy = dx * (h / d)
    return [(mx + ox, my + oy), (mx - ox, my - oy)]
