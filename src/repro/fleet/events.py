"""Push invalidation: per-handle Server-Sent-Events fan-out.

Dynamic heat maps already carry monotone version/generation counters; this
module is how those bumps reach viewers *without polling*.  An
:class:`EventBroker` lives inside each HTTP app (replica and proxy alike):
``POST /update`` publishes a frame, and every ``GET /events/{handle}``
subscriber's stream yields it.  The proxy relays a single upstream
subscription per handle and republishes frames to its own broker, so N
viewers behind the proxy cost one replica connection.

Frames are standard SSE (``id:``/``event:``/``data:`` lines, blank-line
terminated, JSON payloads), so a browser ``EventSource`` consumes them
directly.  Delivery is lossy by design: a slow subscriber's bounded queue
drops its *oldest* frame first — an invalidation stream only has to
deliver "your tiles are stale, refetch", and the newest frame carries the
latest truth.

Loop-confined like the rest of the async edge: subscribe/publish/close
must run on the app's event loop (handlers already do).
"""

from __future__ import annotations

import asyncio
import json

__all__ = ["EventBroker", "format_sse_event"]

#: Queue sentinel: the subscription ended (drain, handle close, relay EOF).
_CLOSED = None


def format_sse_event(event: str, data: dict, event_id: "int | None" = None) -> bytes:
    """One wire-ready SSE frame (``id``/``event``/``data`` + blank line)."""
    lines = []
    if event_id is not None:
        lines.append(f"id: {event_id}")
    lines.append(f"event: {event}")
    lines.append(f"data: {json.dumps(data, sort_keys=True)}")
    return ("\n".join(lines) + "\n\n").encode("utf-8")


class EventBroker:
    """Per-handle subscriber queues behind publish/subscribe counters.

    Args:
        max_queue: per-subscriber buffered frames; on overflow the oldest
            frame is dropped (counted in ``dropped``) so a stalled viewer
            can never wedge a publisher.
    """

    def __init__(self, *, max_queue: int = 256) -> None:
        self.max_queue = int(max_queue)
        self._subs: "dict[str, set[asyncio.Queue]]" = {}
        self._seq: "dict[str, int]" = {}
        self.closed = False
        self.published = 0
        self.delivered = 0
        self.dropped = 0
        self.subscribers_peak = 0

    def subscribers(self, handle: "str | None" = None) -> int:
        """Live subscription count for one handle (or the whole broker)."""
        if handle is not None:
            return len(self._subs.get(handle, ()))
        return sum(len(qs) for qs in self._subs.values())

    def last_seq(self, handle: str) -> int:
        """The most recently published sequence number for ``handle``."""
        return self._seq.get(handle, 0)

    def subscribe(self, handle: str) -> asyncio.Queue:
        """A new subscription queue for ``handle`` (frames as bytes).

        On a closed (draining) broker the queue arrives pre-terminated so
        the caller's stream ends immediately instead of hanging.
        """
        q: asyncio.Queue = asyncio.Queue()
        if self.closed:
            q.put_nowait(_CLOSED)
            return q
        self._subs.setdefault(handle, set()).add(q)
        self.subscribers_peak = max(self.subscribers_peak, self.subscribers())
        return q

    def unsubscribe(self, handle: str, q: asyncio.Queue) -> None:
        """Drop one subscription (no-op when already gone)."""
        qs = self._subs.get(handle)
        if qs is not None:
            qs.discard(q)
            if not qs:
                del self._subs[handle]

    def publish_frame(self, handle: str, frame: bytes) -> None:
        """Deliver one pre-formatted frame to every ``handle`` subscriber."""
        if self.closed:
            return
        self.published += 1
        for q in self._subs.get(handle, ()):
            while q.qsize() >= self.max_queue:
                try:
                    q.get_nowait()
                    self.dropped += 1
                except asyncio.QueueEmpty:  # pragma: no cover - defensive
                    break
            q.put_nowait(frame)
            self.delivered += 1

    def publish(self, handle: str, event: str, data: dict) -> int:
        """Format and deliver one event; returns its per-handle sequence."""
        seq = self._seq.get(handle, 0) + 1
        self._seq[handle] = seq
        self.publish_frame(handle, format_sse_event(event, data, event_id=seq))
        return seq

    def close_handle(self, handle: str) -> None:
        """End every stream for one handle (upstream relay went away)."""
        for q in self._subs.pop(handle, ()):
            q.put_nowait(_CLOSED)

    def close(self) -> None:
        """End every stream (drain): sentinel all queues, refuse new work."""
        self.closed = True
        for handle in list(self._subs):
            self.close_handle(handle)

    def stats(self) -> dict:
        """Broker counters for the ``/stats``/``/fleet/stats`` documents."""
        return {
            "subscribers": self.subscribers(),
            "subscribers_peak": self.subscribers_peak,
            "published": self.published,
            "delivered": self.delivered,
            "dropped": self.dropped,
        }
