"""Consistent-hash ring: tile ownership sharded across serving replicas.

The fleet shards work on stable string keys — ``handle`` for queries and
``handle/z/tx/ty`` for tiles (see :func:`tile_key`) — so one hot heat map
spreads across every replica instead of pinning a single process, while
each *individual* tile keeps hitting the same replica's warm caches.

Classic consistent hashing with virtual nodes: each replica is hashed to
``vnodes`` points on a 64-bit ring, and a key belongs to the first vnode
clockwise from the key's own hash.  Virtual nodes smooth the load split
(the ring property test bounds a chi-square-ish statistic), and the ring
structure bounds churn: adding or removing one replica remaps only the
keys adjacent to that replica's vnodes — about ``1/N`` of the keyspace,
never a full reshuffle (tested at ``<= 2/N``).

Hashing is :func:`hashlib.blake2b` (stable across processes and Python
runs — ``hash()`` is salted and would shard differently per process), so
every proxy and replica computes identical ownership independently.
"""

from __future__ import annotations

import bisect
from hashlib import blake2b

__all__ = ["HashRing", "tile_key"]


def tile_key(handle: str, z: int, tx: int, ty: int) -> str:
    """The ring key for one tile: shards a handle's tiles across replicas."""
    return f"{handle}/{z}/{tx}/{ty}"


def _hash64(data: str) -> int:
    return int.from_bytes(
        blake2b(data.encode("utf-8"), digest_size=8).digest(), "big"
    )


class HashRing:
    """A consistent-hash ring over named replicas.

    Args:
        nodes: initial replica names (typically ``host:port`` strings).
        vnodes: virtual nodes per replica; more vnodes = smoother load
            split at the cost of a larger (still tiny) sorted table.

    The ring is deterministic: two rings built from the same node set
    agree on every key's owner, whatever the insertion order.
    """

    def __init__(self, nodes=(), *, vnodes: int = 128) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = int(vnodes)
        #: Sorted vnode hash points and their parallel owner list.
        self._points: "list[int]" = []
        self._owners: "list[str]" = []
        self._nodes: "set[str]" = set()
        for node in nodes:
            self.add(node)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def nodes(self) -> "list[str]":
        """The current replica names, sorted."""
        return sorted(self._nodes)

    def add(self, node: str) -> None:
        """Join one replica (its ``vnodes`` hash points) to the ring.

        Raises ``ValueError`` on duplicates — a silent re-add would mask
        configuration bugs (two replicas claiming one name).
        """
        if node in self._nodes:
            raise ValueError(f"node {node!r} is already on the ring")
        self._nodes.add(node)
        for i in range(self.vnodes):
            point = _hash64(f"{node}#{i}")
            idx = bisect.bisect_left(self._points, point)
            self._points.insert(idx, point)
            self._owners.insert(idx, node)

    def remove(self, node: str) -> None:
        """Leave: drop one replica's vnodes (ValueError when unknown)."""
        if node not in self._nodes:
            raise ValueError(f"node {node!r} is not on the ring")
        self._nodes.discard(node)
        keep = [
            (p, o) for p, o in zip(self._points, self._owners) if o != node
        ]
        self._points = [p for p, _ in keep]
        self._owners = [o for _, o in keep]

    def owner(self, key: str) -> str:
        """The replica owning ``key``: first vnode clockwise of its hash."""
        if not self._points:
            raise LookupError("the ring has no nodes")
        idx = bisect.bisect_right(self._points, _hash64(key))
        return self._owners[idx % len(self._owners)]

    def preference(self, key: str, n: "int | None" = None) -> "list[str]":
        """Distinct replicas in ring order from ``key`` — the failover list.

        The first element is :meth:`owner`; each subsequent element is the
        next *distinct* replica clockwise, which is exactly the node that
        inherits the key if every replica before it leaves.  ``n`` caps
        the list (default: all replicas).
        """
        if not self._points:
            raise LookupError("the ring has no nodes")
        want = len(self._nodes) if n is None else min(int(n), len(self._nodes))
        start = bisect.bisect_right(self._points, _hash64(key))
        out: "list[str]" = []
        seen: "set[str]" = set()
        for i in range(len(self._owners)):
            node = self._owners[(start + i) % len(self._owners)]
            if node not in seen:
                seen.add(node)
                out.append(node)
                if len(out) == want:
                    break
        return out
