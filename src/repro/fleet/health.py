"""Background replica health probing: eject dead ring nodes, re-admit live.

PR 7's fleet had *static* ring membership: a dead replica stayed on the
ring forever, costing every request that hashed to it a connect-timeout
before failing over.  :class:`HealthMonitor` closes that gap — a
background task on the proxy's loop probes each replica's
``/healthz?ready=1`` on an interval (with its own short-timeout clients,
never the hot path's pools):

* ``failures`` consecutive failed probes **eject** the replica from the
  consistent-hash ring — tiles re-shard to the surviving nodes and no
  request pays the dead node's timeout again;
* a successful probe of an off-ring replica **re-admits** it (the
  replica hot-rejoin the ring API always supported), restores its
  pinned traffic share, and closes its circuit breaker so requests flow
  immediately.

Membership changes are just ``ring.remove``/``ring.add`` — the proxy's
``_candidates`` failover list always falls back to the full static
replica set, so even a fully-ejected fleet keeps answering the moment
any replica comes back.
"""

from __future__ import annotations

import asyncio
import contextlib

__all__ = ["HealthMonitor"]


class HealthMonitor:
    """Probe replicas periodically; drive the proxy's ring membership.

    Args:
        proxy: the owning :class:`~repro.fleet.proxy.FleetProxy` (its
            ring and breakers are the state this monitor drives).
        interval: seconds between probe rounds.
        failures: consecutive probe failures before ejection.
        probe_timeout: per-probe connect/response bound — probes must be
            much snappier than real requests.
    """

    def __init__(
        self,
        proxy,
        *,
        interval: float = 0.5,
        failures: int = 3,
        probe_timeout: float = 1.0,
    ) -> None:
        self.proxy = proxy
        self.interval = float(interval)
        self.failures = int(failures)
        self.probe_timeout = float(probe_timeout)
        self._task: "asyncio.Task | None" = None
        self._bad: "dict[str, int]" = {a: 0 for a in proxy.replicas}
        self.ejections = 0
        self.readmissions = 0
        # Dedicated short-timeout clients: a probe must never block on
        # (or steal a pooled connection from) the request path.
        from .proxy import _ReplicaClient

        self._clients = {
            addr: _ReplicaClient(
                addr,
                connect_timeout=self.probe_timeout,
                request_timeout=self.probe_timeout,
                max_idle=1,
            )
            for addr in proxy.replicas
        }

    def start(self) -> None:
        """Begin probing on the current event loop (idempotent)."""
        if self._task is None or self._task.done():
            self._task = asyncio.create_task(self._loop())

    def stop(self) -> None:
        """Cancel the probe task and drop the probe connections."""
        if self._task is not None:
            self._task.cancel()
            self._task = None
        for client in self._clients.values():
            client.close()

    async def _loop(self) -> None:
        while True:
            await asyncio.gather(
                *(self._probe(addr) for addr in self.proxy.replicas)
            )
            await asyncio.sleep(self.interval)

    async def _probe(self, addr: str) -> None:
        """One probe of one replica; applies the membership consequences."""
        from .proxy import ReplicaError

        try:
            response = await self._clients[addr].request(
                "GET", "/healthz?ready=1"
            )
            ok = response.status == 200
        except ReplicaError:
            ok = False
        if ok:
            self._bad[addr] = 0
            if addr not in self.proxy.ring:
                self.proxy.ring.add(addr)
                self.readmissions += 1
            # The probe is a real successful request: let traffic flow
            # again instead of waiting out the breaker's reset window.
            self.proxy.breakers[addr].record_success()
        else:
            self._bad[addr] += 1
            if self._bad[addr] >= self.failures and addr in self.proxy.ring:
                with contextlib.suppress(ValueError):
                    self.proxy.ring.remove(addr)
                    self.ejections += 1

    def snapshot(self) -> dict:
        """Health state for ``/fleet/stats``: membership + probe counters."""
        return {
            "ejections": self.ejections,
            "readmissions": self.readmissions,
            "ring_members": self.proxy.ring.nodes(),
            "failing": {a: n for a, n in self._bad.items() if n > 0},
        }
