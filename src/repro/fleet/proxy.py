"""The fleet coordinator: one front door over N serving replicas.

:class:`FleetProxy` is a :class:`~repro.server.app.BaseHTTPApp` — it rides
the same dependency-free HTTP stack, connection loop and
client-disconnect cancellation as the replica app — whose handlers
*forward* instead of compute:

* **Tiles and queries** route to the ring owner of their key
  (``handle/z/tx/ty`` for tiles, the handle for queries) and fail over to
  the next distinct ring node when a replica is unreachable or answers
  5xx — a dead replica degrades capacity, not availability.
* **Builds and datasets** fan out to *every* replica: each replica builds
  (or promotes), and because replicas share one ``store_dir`` the result
  store's cross-process sweep lease guarantees exactly one actual sweep
  per fingerprint fleet-wide.  ``GET /build/{handle}`` aggregates: ready
  only when every reachable replica is ready.
* **Dynamic handles** (``dyn-…``, fleet-unique per replica) are
  per-replica state: their build is
  routed to one replica (round-robin) and a sticky ``handle -> replica``
  map pins every later tile/query/update/event for that handle to it.
* **Events** relay: the proxy keeps *one* upstream SSE subscription per
  handle and republishes frames through its own broker to any number of
  downstream viewers — N viewers cost one replica connection.
* ``GET /fleet/stats`` aggregates every replica's ``/stats`` with the
  proxy's own routing counters, the ring layout, health-probe state and
  per-replica circuit-breaker states.

**Resilience** (see ``docs/resilience.md``): every replica client is
guarded by a :class:`~repro.faults.CircuitBreaker` — a replica that
keeps failing transport costs an instant local refusal instead of a
timeout per request; a background
:class:`~repro.fleet.health.HealthMonitor` ejects dead replicas from
the ring and re-admits recovered ones (replica hot-rejoin); failover
sleeps follow a full-jitter :class:`~repro.faults.RetryPolicy`; and a
request carrying ``X-Deadline`` has each replica attempt clamped to the
remaining budget, with the decremented budget forwarded downstream.

The proxy is stateless apart from caches (sticky map, connection pools):
restarting it loses nothing durable.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
from dataclasses import dataclass, field, fields
from urllib.parse import quote, urlencode

from .. import faults
from ..faults import CircuitBreaker, Deadline, FaultError, RetryPolicy
from ..server.app import BaseHTTPApp
from ..server.errors import HTTPError, error_payload
from ..server.http import ConnectionBuffer, Request, Response, read_response
from ..server.wire import json_response
from .health import HealthMonitor
from .ring import HashRing, tile_key

__all__ = ["FleetProxy", "FleetStats", "ReplicaError"]

#: Response headers worth forwarding to the viewer (hop-by-hop and
#: framing headers are re-derived by our own serializer).
#: ``x-tile-placeholder`` marks progressive (degraded) tiles — the
#: viewer needs it to know to revalidate into the real render.
_FORWARD_RESPONSE_HEADERS = (
    "etag", "location", "cache-control", "x-tile-placeholder",
)

#: Request headers worth forwarding to the replica.
_FORWARD_REQUEST_HEADERS = ("content-type", "if-none-match", "accept")

#: Most sticky dynamic-handle routes remembered before the oldest drop.
_MAX_STICKY = 4096


class ReplicaError(Exception):
    """A replica was unreachable (or broke protocol) — failover material."""


@dataclass
class FleetStats:
    """Proxy-side routing counters (mutated only on the proxy's loop).

    ``failovers`` counts requests answered by a node other than the
    first-choice owner; ``replica_errors`` counts transport failures
    against individual replicas (several may back one ``failover``);
    ``breaker_rejections`` counts attempts refused locally because the
    target replica's circuit breaker was open (no socket was touched).
    """

    routed: int = 0
    fanouts: int = 0
    failovers: int = 0
    replica_errors: int = 0
    breaker_rejections: int = 0
    events_relayed: int = 0
    relays_open: int = 0
    #: Tile responses relayed that a replica marked degraded
    #: (``X-Tile-Placeholder``) — the fleet-wide progressive-serving rate.
    placeholder_tiles_relayed: int = 0

    def as_dict(self) -> dict:
        """The counters as a plain dict (the ``/fleet/stats`` block)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


class _ReplicaClient:
    """A tiny pooled HTTP/1.1 client for one replica address.

    Keep-alive connections are pooled per replica; a request that fails
    on a *pooled* connection (stale keep-alive) is retried once on a
    fresh one before the failure surfaces as :class:`ReplicaError` —
    transport errors on a fresh connection mean the replica is really
    gone and the ring should fail over.
    """

    def __init__(
        self,
        address: str,
        *,
        connect_timeout: float = 2.0,
        request_timeout: float = 60.0,
        max_idle: int = 8,
    ) -> None:
        self.address = address
        host, _, port = address.rpartition(":")
        if not host or not port.isdigit():
            raise ValueError(
                f"replica address {address!r} must look like host:port"
            )
        self.host = host
        self.port = int(port)
        self.connect_timeout = float(connect_timeout)
        self.request_timeout = float(request_timeout)
        self.max_idle = int(max_idle)
        self._idle: "list[tuple[asyncio.StreamReader, asyncio.StreamWriter, ConnectionBuffer]]" = []

    async def _connect(self):
        try:
            await faults.afire("replica-connect")
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(self.host, self.port),
                self.connect_timeout,
            )
        except (OSError, asyncio.TimeoutError, FaultError) as exc:
            raise ReplicaError(f"{self.address}: connect failed: {exc}") from exc
        return reader, writer, ConnectionBuffer(reader)

    @staticmethod
    def _encode(method: str, target: str, headers: dict, body: bytes) -> bytes:
        head = [f"{method} {target} HTTP/1.1"]
        out = {"Host": "fleet", "Content-Length": str(len(body))}
        out.update(headers)
        for name, value in out.items():
            head.append(f"{name}: {value}")
        return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body

    async def request(
        self,
        method: str,
        target: str,
        *,
        body: bytes = b"",
        headers: "dict[str, str] | None" = None,
        timeout: "float | None" = None,
    ) -> Response:
        """One request/response exchange; pooled, with one stale-retry.

        ``timeout`` overrides the client's default response bound — the
        proxy clamps it to a request's remaining ``X-Deadline`` budget.
        """
        payload = self._encode(method, target, headers or {}, body)
        bound = self.request_timeout if timeout is None else timeout
        attempts = 2 if self._idle else 1
        for attempt in range(attempts):
            fresh = not self._idle
            if self._idle:
                reader, writer, buf = self._idle.pop()
            else:
                reader, writer, buf = await self._connect()
            try:
                writer.write(payload)
                await writer.drain()

                async def _read():
                    # The injected delay counts against the same response
                    # bound a real slow replica would: a "hang" fault with
                    # a long delay times out exactly like a dead peer.
                    await faults.afire("replica-read")
                    return await read_response(buf)

                response = await asyncio.wait_for(_read(), bound)
                if response is None:
                    raise ConnectionError("EOF before response")
            except (
                ConnectionError, OSError, asyncio.TimeoutError, HTTPError,
                FaultError,
            ) as exc:
                writer.close()
                if fresh or attempt == attempts - 1:
                    raise ReplicaError(f"{self.address}: {exc}") from exc
                continue  # stale pooled connection: retry on a fresh one
            if (
                response.headers.get("connection", "").lower() != "close"
                and len(self._idle) < self.max_idle
            ):
                self._idle.append((reader, writer, buf))
            else:
                writer.close()
            return response
        raise ReplicaError(f"{self.address}: unreachable")  # pragma: no cover

    async def open_stream(
        self, target: str
    ) -> "tuple[asyncio.StreamWriter, ConnectionBuffer, Response]":
        """A dedicated connection with the response head read, body left
        unread — the SSE relay's upstream half.  The caller owns (and must
        close) the returned writer."""
        reader, writer, buf = await self._connect()
        try:
            writer.write(self._encode(
                "GET", target, {"Accept": "text/event-stream"}, b""
            ))
            await writer.drain()
            response = await asyncio.wait_for(
                read_response(buf), self.connect_timeout + self.request_timeout
            )
            if response is None:
                raise ConnectionError("EOF before response")
        except (ConnectionError, OSError, asyncio.TimeoutError, HTTPError) as exc:
            writer.close()
            raise ReplicaError(f"{self.address}: {exc}") from exc
        return writer, buf, response

    def close(self) -> None:
        """Drop every pooled connection."""
        for _reader, writer, _buf in self._idle:
            writer.close()
        self._idle.clear()


class _Relay:
    """One upstream SSE subscription being fanned out to local viewers."""

    def __init__(self, handle: str) -> None:
        self.handle = handle
        self.refs = 0
        self.task: "asyncio.Task | None" = None
        self.writer: "asyncio.StreamWriter | None" = None


class FleetProxy(BaseHTTPApp):
    """Coordinator app routing requests across a replica fleet.

    Args:
        replicas: replica addresses (``host:port`` strings); the *static*
            superset of the fleet — the health monitor ejects dead
            members from the ring and re-admits them when they recover,
            but never learns of addresses not listed here.
        vnodes: virtual nodes per replica on the consistent-hash ring.
        connect_timeout / request_timeout: per-replica client limits.
        startup_timeout: how long :meth:`startup` waits for every replica
            to answer ``/healthz?ready=1`` before serving anyway.
        max_inflight: admission-control bound (see
            :class:`~repro.server.app.BaseHTTPApp`).
        pool_size: most idle keep-alive sockets kept per replica; the
            pools are also emptied on drain, so a long-lived coordinator
            cannot leak file descriptors.
        breaker_failures / breaker_reset: consecutive transport failures
            that open a replica's circuit breaker, and the seconds it
            stays open before a half-open probe.
        retry: the failover backoff policy (default: 3 attempts' worth
            of full-jitter sleeps from a 20ms base).
        health_interval / health_failures: health-probe cadence and the
            consecutive probe failures that eject a replica from the
            ring (``health_interval=0`` disables the monitor).
    """

    def __init__(
        self,
        replicas,
        *,
        vnodes: int = 128,
        max_body_bytes: int = 64 * 1024 * 1024,
        max_inflight: "int | None" = None,
        connect_timeout: float = 2.0,
        request_timeout: float = 60.0,
        startup_timeout: float = 10.0,
        pool_size: int = 8,
        breaker_failures: int = 3,
        breaker_reset: float = 2.0,
        retry: "RetryPolicy | None" = None,
        health_interval: float = 0.5,
        health_failures: int = 3,
    ) -> None:
        super().__init__(max_body_bytes=max_body_bytes, max_inflight=max_inflight)
        addresses = [str(r).strip() for r in replicas if str(r).strip()]
        if not addresses:
            raise ValueError("a fleet proxy needs at least one replica")
        if len(set(addresses)) != len(addresses):
            raise ValueError(f"duplicate replica addresses in {addresses}")
        self.replicas = addresses
        self.ring = HashRing(addresses, vnodes=vnodes)
        self.startup_timeout = float(startup_timeout)
        self.fleet_stats = FleetStats()
        self.retry = retry if retry is not None else RetryPolicy(base=0.02, cap=0.25)
        self.breakers = {
            addr: CircuitBreaker(
                failures=breaker_failures, reset_after=breaker_reset
            )
            for addr in addresses
        }
        self.health = (
            HealthMonitor(
                self, interval=health_interval, failures=health_failures
            )
            if health_interval > 0
            else None
        )
        self._clients = {
            addr: _ReplicaClient(
                addr,
                connect_timeout=connect_timeout,
                request_timeout=request_timeout,
                max_idle=pool_size,
            )
            for addr in addresses
        }
        #: dynamic handle -> owning replica (dyn state lives on exactly
        #: one replica; the ring cannot find it, stickiness must).
        self._sticky: "dict[str, str]" = {}
        self._dyn_rr = 0
        self._relays: "dict[str, _Relay]" = {}
        self.router.add("GET", "/healthz", self._handle_healthz)
        self.router.add("GET", "/stats", self._handle_stats)
        self.router.add("GET", "/fleet/stats", self._handle_fleet_stats)
        self.router.add("GET", "/openapi.yaml", self._handle_openapi)
        self.router.add("POST", "/datasets", self._handle_datasets)
        self.router.add("POST", "/build", self._handle_build)
        self.router.add("GET", "/build/{handle}", self._handle_build_status)
        self.router.add("POST", "/query/{handle}", self._handle_query)
        self.router.add("POST", "/update/{handle}", self._handle_update)
        self.router.add(
            "GET", "/tiles/{handle}/{z:int}/{tx:int}/{ty:int}.png",
            self._handle_tile,
        )
        self.router.add("GET", "/events/{handle}", self._handle_events)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def startup(self) -> None:
        """Wait (bounded) for every replica's readiness, then be ready.

        A replica that never readies within ``startup_timeout`` does not
        block the proxy forever — the ring simply fails over around it
        until it comes up.
        """
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.startup_timeout
        pending = set(self.replicas)
        while pending and loop.time() < deadline:
            for addr in sorted(pending):
                try:
                    response = await self._clients[addr].request(
                        "GET", "/healthz?ready=1"
                    )
                except ReplicaError:
                    continue
                if response.status == 200:
                    pending.discard(addr)
            if pending:
                await asyncio.sleep(0.05)
        if self.health is not None:
            self.health.start()
        await super().startup()

    def begin_drain(self) -> None:
        """Drain like the base app, plus: stop probing and empty the
        connection pools (a draining coordinator holds no idle sockets)."""
        super().begin_drain()
        if self.health is not None:
            self.health.stop()
        for client in self._clients.values():
            client.close()

    async def aclose(self) -> None:
        """Stop probing, cancel relays, drop every pooled connection."""
        if self.health is not None:
            self.health.stop()
        for relay in list(self._relays.values()):
            self._stop_relay(relay)
        for client in self._clients.values():
            client.close()

    def aclose_sync(self) -> None:
        """Nothing blocking to release (pools die with the loop)."""

    # ------------------------------------------------------------------
    # Forwarding machinery
    # ------------------------------------------------------------------
    @staticmethod
    def _target(request: Request) -> str:
        target = quote(request.path, safe="/.-_~")
        if request.query:
            target += "?" + urlencode(request.query)
        return target

    async def _forward(
        self,
        request: Request,
        replica: str,
        *,
        deadline: "Deadline | None" = None,
    ) -> Response:
        """Forward one request verbatim; reframe the response for us.

        The replica's circuit breaker gates the attempt: open means an
        instant :class:`ReplicaError` without touching a socket.
        Transport outcomes feed back into the breaker; HTTP status codes
        do not (a 500 from a handler is an application answer from a
        live replica).  With a ``deadline``, the response wait is clamped
        to the remaining budget and the decremented budget is forwarded
        as ``X-Deadline`` so the replica stops working the moment the
        viewer's budget is gone.
        """
        breaker = self.breakers[replica]
        if not breaker.allow():
            self.fleet_stats.breaker_rejections += 1
            raise ReplicaError(f"{replica}: circuit open")
        headers = {}
        for name in _FORWARD_REQUEST_HEADERS:
            if name in request.headers:
                headers[name.title()] = request.headers[name]
        timeout = None
        if deadline is not None:
            headers["X-Deadline"] = deadline.header_value()
            timeout = min(
                self._clients[replica].request_timeout, deadline.remaining()
            )
        try:
            upstream = await self._clients[replica].request(
                request.method,
                self._target(request),
                body=request.body,
                headers=headers,
                timeout=timeout,
            )
        except ReplicaError:
            breaker.record_failure()
            raise
        breaker.record_success()
        out = {}
        for name in _FORWARD_RESPONSE_HEADERS:
            if name in upstream.headers:
                out[name.title().replace("Etag", "ETag")] = upstream.headers[name]
        return Response(
            status=upstream.status,
            body=upstream.body,
            content_type=upstream.content_type,
            headers=out,
        )

    def _candidates(self, handle: str, key: "str | None" = None) -> "list[str]":
        """Failover order: sticky pin first, then ring preference, then
        every remaining replica (a 404 on the owner may just mean the
        handle lives elsewhere — e.g. after a proxy restart lost the
        sticky map).  The tail over the *full static* replica list also
        keeps the fleet answering when the health monitor has ejected
        every ring node: a recovered-but-not-yet-readmitted replica is
        still tried."""
        out: "list[str]" = []
        sticky = self._sticky.get(handle)
        if sticky is not None and sticky in self._clients:
            out.append(sticky)
        for node in self.ring.preference(key if key is not None else handle):
            if node not in out:
                out.append(node)
        for node in self.replicas:
            if node not in out:
                out.append(node)
        return out

    def _pin(self, handle: str, replica: str) -> None:
        """Remember a dynamic handle's owner (bounded, oldest dropped)."""
        if handle.startswith("dyn-") or handle in self._sticky:
            self._sticky.pop(handle, None)
            self._sticky[handle] = replica
            while len(self._sticky) > _MAX_STICKY:
                del self._sticky[next(iter(self._sticky))]

    async def _route(
        self, request: Request, handle: str, key: "str | None" = None
    ) -> Response:
        """Forward to the owner; retry along the ring on failure.

        Transport errors and 5xx answers try the next distinct ring node
        (counted as failovers); 404 also advances — the handle may be
        resident elsewhere — but a unanimous 404 *is* the answer.  The
        replica that answers gets pinned for dynamic handles.

        Transport failures back off between candidates with the proxy's
        full-jitter :class:`~repro.faults.RetryPolicy` (decorrelating a
        thundering herd when a replica dies under load); a request
        carrying ``X-Deadline`` never sleeps or waits past its remaining
        budget.
        """
        self.fleet_stats.routed += 1
        raw = request.headers.get("x-deadline")
        deadline: "Deadline | None" = None
        if raw is not None:
            with contextlib.suppress(ValueError):  # bad header: 400 upstream
                deadline = Deadline.from_header(raw)
        last: "Response | None" = None
        errors = 0
        for i, replica in enumerate(self._candidates(handle, key)):
            if deadline is not None and deadline.expired:
                break  # dispatch turns the cancellation into a 504
            try:
                response = await self._forward(
                    request, replica, deadline=deadline
                )
            except ReplicaError:
                self.fleet_stats.replica_errors += 1
                pause = self.retry.backoff(errors)
                errors += 1
                if deadline is not None:
                    pause = min(pause, deadline.remaining())
                if pause > 0:
                    await asyncio.sleep(pause)
                continue
            if response.status >= 500 or response.status == 404:
                last = response
                continue
            if i > 0:
                self.fleet_stats.failovers += 1
            self._pin(handle, replica)
            return response
        if last is not None:
            return last  # unanimous 404 (or the final 5xx): honest answer
        raise HTTPError(
            503, f"no replica reachable for handle {handle!r}"
        )

    async def _fan_out(self, request: Request) -> "list[object]":
        """The same request against every replica, concurrently.

        Returns one entry per replica, aligned with ``self.replicas``:
        a :class:`Response` or the :class:`ReplicaError` that replica
        raised.
        """
        self.fleet_stats.fanouts += 1
        results = await asyncio.gather(
            *(self._forward(request, addr) for addr in self.replicas),
            return_exceptions=True,
        )
        out: "list[object]" = []
        for item in results:
            if isinstance(item, ReplicaError):
                self.fleet_stats.replica_errors += 1
                out.append(item)
            elif isinstance(item, BaseException):
                raise item
            else:
                out.append(item)
        return out

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    async def _handle_healthz(self, request: Request) -> Response:
        """Proxy liveness/readiness + the fleet membership."""
        body = {
            "status": "ok",
            "role": "fleet-proxy",
            "replicas": len(self.replicas),
        }
        status = 200
        if request.query.get("ready", "") not in ("", "0", "false"):
            if not self.ready:
                body["status"] = "draining" if self.draining else "starting"
                status = 503
        return json_response(body, status)

    async def _handle_stats(self, request: Request) -> Response:
        """The proxy's own counters (see ``/fleet/stats`` for the fleet)."""
        return json_response({
            "http": self.http_stats.as_dict(),
            "latency": self.latency.snapshot(),
            "fleet": self.fleet_stats.as_dict(),
            "events": self.events.stats(),
        })

    async def _handle_openapi(self, request: Request) -> Response:
        """Serve the shared API contract (proxy and replica speak it)."""
        from ..server.openapi import spec_yaml

        return Response(
            body=spec_yaml().encode(), content_type="application/yaml"
        )

    async def _handle_fleet_stats(self, request: Request) -> Response:
        """Aggregated observability: every replica's ``/stats`` + ours.

        ``fleet`` sums the numeric service counters across reachable
        replicas — ``builds`` is the number of *actual sweeps* performed
        fleet-wide, which under a shared store stays at one per distinct
        fingerprint no matter how many replicas built it.
        """
        probe = Request(method="GET", path="/stats")
        results = await self._fan_out(probe)
        replicas = []
        totals: "dict[str, float]" = {}
        for addr, item in zip(self.replicas, results):
            if isinstance(item, ReplicaError):
                replicas.append({
                    "replica": addr, "reachable": False, "error": str(item),
                })
                continue
            try:
                stats = json.loads(item.body)
            except ValueError:
                replicas.append({"replica": addr, "reachable": False,
                                 "error": "unparseable /stats"})
                continue
            replicas.append({
                "replica": addr, "reachable": True, "stats": stats,
            })
            for name, value in stats.get("service", {}).items():
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    totals[name] = totals.get(name, 0) + value
        return json_response({
            "fleet": totals,
            "replicas": replicas,
            "proxy": {
                "http": self.http_stats.as_dict(),
                "routing": self.fleet_stats.as_dict(),
                "events": self.events.stats(),
                "breakers": {
                    addr: breaker.state
                    for addr, breaker in self.breakers.items()
                },
                "health": (
                    self.health.snapshot() if self.health is not None else None
                ),
            },
            "ring": {
                "nodes": self.ring.nodes(),
                "vnodes": self.ring.vnodes,
                "sticky_handles": len(self._sticky),
            },
        })

    # ------------------------------------------------------------------
    # Fan-out endpoints (datasets, builds)
    # ------------------------------------------------------------------
    async def _handle_datasets(self, request: Request) -> Response:
        """Register a dataset on every replica (builds fan out later).

        Succeeds when every *reachable* replica accepted; a down replica
        is skipped (the ring routes around it anyway) but a unanimous
        failure is a 503.
        """
        results = await self._fan_out(request)
        responses = [r for r in results if isinstance(r, Response)]
        if not responses:
            raise HTTPError(503, "no replica reachable for POST /datasets")
        for response in responses:
            if response.status >= 400:
                return response
        best = max(responses, key=lambda r: r.status)  # 201 beats 200
        return best

    async def _handle_build(self, request: Request) -> Response:
        """Kick a build fleet-wide (static) or on one replica (dynamic).

        Static builds go to every replica concurrently: the shared result
        store's sweep lease makes exactly one of them actually sweep; the
        rest block briefly and promote.  Dynamic builds pick one replica
        round-robin and pin the returned ``dyn-…`` handle to it.
        """
        try:
            payload = request.json()
        except HTTPError:
            payload = None
        if isinstance(payload, dict) and payload.get("dynamic") is True:
            order = self.replicas[self._dyn_rr:] + self.replicas[:self._dyn_rr]
            self._dyn_rr = (self._dyn_rr + 1) % len(self.replicas)
            for i, replica in enumerate(order):
                try:
                    response = await self._forward(request, replica)
                except ReplicaError:
                    self.fleet_stats.replica_errors += 1
                    continue
                if i > 0:
                    self.fleet_stats.failovers += 1
                if response.status < 400:
                    try:
                        handle = json.loads(response.body).get("handle")
                    except ValueError:
                        handle = None
                    if isinstance(handle, str):
                        self._sticky[handle] = replica
                        self._pin(handle, replica)
                return response
            raise HTTPError(503, "no replica reachable for POST /build")
        results = await self._fan_out(request)
        responses = [r for r in results if isinstance(r, Response)]
        if not responses:
            raise HTTPError(503, "no replica reachable for POST /build")
        for response in responses:
            if response.status >= 400:
                return response
        for response in responses:
            if response.status == 202:
                return response  # someone is still building: poll
        return responses[0]  # everyone already resident

    async def _handle_build_status(self, request: Request, handle: str) -> Response:
        """Aggregate build status: ready only when *every* reachable
        replica can serve the handle (so any tile route lands warm).

        A dynamic handle polls its pinned replica directly.  Precedence
        for static fan-out: failed > evicted > building > ready.  A
        replica answering 404 blocks nothing (the ring fails tile misses
        over to a replica that has the build) — only a *unanimous* 404
        is a 404.
        """
        if handle in self._sticky:
            return await self._route(request, handle)
        results = await self._fan_out(request)
        statuses: "list[tuple[str, dict]]" = []
        reachable = 0
        for item in results:
            if isinstance(item, ReplicaError):
                continue
            reachable += 1
            if item.status == 404:
                statuses.append(("unknown", {}))
                continue
            try:
                body = json.loads(item.body)
            except ValueError:
                statuses.append(("unknown", {}))
                continue
            statuses.append((str(body.get("status", "unknown")), body))
        if not reachable:
            raise HTTPError(503, f"no replica reachable for build {handle!r}")
        if all(s == "unknown" for s, _ in statuses):
            raise HTTPError(404, f"unknown build handle {handle!r}")
        for wanted in ("failed", "evicted"):
            for s, body in statuses:
                if s == wanted:
                    return json_response(body, 200)
        if any(s == "building" for s, _ in statuses):
            return json_response(
                {"handle": handle, "status": "building",
                 "poll": f"/build/{handle}"},
                202,
            )
        return json_response({"handle": handle, "status": "ready"})

    # ------------------------------------------------------------------
    # Routed endpoints (tiles, queries, updates)
    # ------------------------------------------------------------------
    async def _handle_query(self, request: Request, handle: str) -> Response:
        """Batch queries route to the handle's ring owner."""
        return await self._route(request, handle)

    async def _handle_update(self, request: Request, handle: str) -> Response:
        """Updates route to the dynamic handle's pinned replica."""
        return await self._route(request, handle)

    async def _handle_tile(
        self, request: Request, handle: str, z: int, tx: int, ty: int
    ) -> Response:
        """Tiles shard on ``(handle, z, tx, ty)`` — one hot heat map
        spreads over the whole fleet, each tile staying cache-warm on its
        owner.  Placeholder (degraded) tile responses pass through with
        their marker header intact and are counted fleet-wide."""
        response = await self._route(
            request, handle, key=tile_key(handle, z, tx, ty)
        )
        if response.headers.get("X-Tile-Placeholder"):
            self.fleet_stats.placeholder_tiles_relayed += 1
        return response

    # ------------------------------------------------------------------
    # Event relay
    # ------------------------------------------------------------------
    async def _handle_events(self, request: Request, handle: str) -> Response:
        """Subscribe a viewer; share one upstream stream per handle."""
        if self._draining:
            raise HTTPError(503, "server is draining")
        relay = self._relays.get(handle)
        if relay is None:
            relay = await self._start_relay(handle)
        queue = self.events.subscribe(handle)
        relay.refs += 1
        broker = self.events

        async def stream():
            try:
                yield self._proxy_hello(handle)
                while True:
                    frame = await queue.get()
                    if frame is None:
                        return
                    yield frame
            finally:
                broker.unsubscribe(handle, queue)
                relay.refs -= 1
                if relay.refs <= 0 and self._relays.get(handle) is relay:
                    self._stop_relay(relay)

        return Response(
            content_type="text/event-stream",
            headers={"Cache-Control": "no-cache"},
            stream=stream(),
        )

    def _proxy_hello(self, handle: str) -> bytes:
        from .events import format_sse_event

        return format_sse_event(
            "hello",
            {"handle": handle, "relay": True,
             "replica": self._sticky.get(handle)},
            event_id=self.events.last_seq(handle),
        )

    async def _start_relay(self, handle: str) -> _Relay:
        """Open the single upstream SSE subscription for one handle."""
        target = f"/events/{quote(handle, safe='')}"
        last_status: "Response | None" = None
        for replica in self._candidates(handle):
            client = self._clients[replica]
            try:
                writer, buf, response = await client.open_stream(target)
            except ReplicaError:
                self.fleet_stats.replica_errors += 1
                continue
            if response.status != 200:
                writer.close()
                last_status = response
                continue
            existing = self._relays.get(handle)
            if existing is not None:
                # A concurrent subscriber won the race to open the
                # upstream stream; ride theirs instead of leaking ours.
                writer.close()
                return existing
            relay = _Relay(handle)
            relay.writer = writer
            relay.task = asyncio.create_task(self._pump(relay, buf))
            self._relays[handle] = relay
            self._pin(handle, replica)
            self.fleet_stats.relays_open += 1
            return relay
        if last_status is not None:
            body = error_payload(last_status.status, f"unknown handle {handle!r}")
            with contextlib.suppress(ValueError):
                body = json.loads(last_status.body)
            raise HTTPError(
                last_status.status,
                body.get("error", {}).get("message", f"handle {handle!r}"),
            )
        raise HTTPError(503, f"no replica reachable for events on {handle!r}")

    async def _pump(self, relay: _Relay, buf: ConnectionBuffer) -> None:
        """Republish upstream frames until the upstream stream ends."""
        handle = relay.handle
        try:
            while True:
                try:
                    frame = await buf.read_until(b"\n\n", 1 << 20)
                except (HTTPError, ConnectionError, OSError):
                    break
                if frame is None:
                    break  # replica drained: upstream ended cleanly
                if b"event: hello" in frame:
                    continue  # each viewer gets its own hello
                self.events.publish_frame(handle, bytes(frame))
                self.fleet_stats.events_relayed += 1
        finally:
            if self._relays.get(handle) is relay:
                del self._relays[handle]
                self.fleet_stats.relays_open -= 1
            # End downstream streams cleanly: a restarting replica must
            # never strand (or 500) the proxy's viewers.
            self.events.close_handle(handle)
            if relay.writer is not None:
                relay.writer.close()

    def _stop_relay(self, relay: _Relay) -> None:
        if relay.task is not None:
            relay.task.cancel()
        if self._relays.get(relay.handle) is relay:
            del self._relays[relay.handle]
            self.fleet_stats.relays_open -= 1
        self.events.close_handle(relay.handle)
        if relay.writer is not None:
            relay.writer.close()
