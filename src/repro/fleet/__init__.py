"""Sharded serving fleet: consistent-hash routing + push invalidation.

One ``serve-http`` process owns one tile cache; this package is how the
stack scales *horizontally*:

* :mod:`~repro.fleet.ring` — a consistent-hash ring with virtual nodes
  sharding tile ownership on ``(handle, z, tx, ty)`` across N replicas,
  with minimal remapping when a replica joins or leaves.
* :mod:`~repro.fleet.proxy` — the coordinator: a
  :class:`~repro.fleet.proxy.FleetProxy` app (``serve-http
  --fleet-proxy host:port,...``) that routes tiles/queries to owner
  replicas over the same dependency-free HTTP stack, fails over to the
  next ring node when a replica dies, fans builds out fleet-wide, and
  aggregates ``/fleet/stats``.
* :mod:`~repro.fleet.events` — the push-invalidation channel: an SSE
  :class:`~repro.fleet.events.EventBroker` behind ``GET
  /events/{handle}``, broadcasting per-handle version bumps from ``POST
  /update`` so viewers (and the proxy, relaying one upstream
  subscription per handle) never poll ETags.
* :mod:`~repro.fleet.health` — the membership monitor: a
  :class:`~repro.fleet.health.HealthMonitor` on the proxy's loop probes
  each replica's readiness, ejects dead nodes from the ring and
  re-admits recovered ones (replica hot-rejoin), closing their circuit
  breakers so traffic returns immediately.

Replicas started with ``serve-http --replica --store-dir DIR`` share one
result store: fingerprint-keyed builds dedupe *fleet-wide* (exactly one
sweep per fingerprint, enforced by the store's cross-process file locks
— see :mod:`repro.service.store`).

``FleetProxy`` is imported lazily (it depends on :mod:`repro.server`,
which itself imports this package's event broker).
"""

from .events import EventBroker, format_sse_event
from .ring import HashRing, tile_key

__all__ = [
    "EventBroker",
    "FleetProxy",
    "HashRing",
    "HealthMonitor",
    "format_sse_event",
    "tile_key",
]


def __getattr__(name: str):
    if name == "FleetProxy":
        from .proxy import FleetProxy

        return FleetProxy
    if name == "HealthMonitor":
        from .health import HealthMonitor

        return HealthMonitor
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
