"""HTTP error taxonomy and domain-exception mapping for the serving edge.

Handlers raise :class:`HTTPError` for protocol-level problems (bad JSON,
unknown route, body too large); domain exceptions raised by the service
layer (:class:`~repro.errors.UnknownHandleError`, ...) are translated to
status codes in one place (:func:`status_for_exception`) so every endpoint
reports the same failure the same way.  Error bodies share one JSON shape::

    {"error": {"status": 404, "message": "..."}}
"""

from __future__ import annotations

from ..errors import (
    AlgorithmUnsupportedError,
    InvalidInputError,
    ReproError,
    UnknownAlgorithmError,
    UnknownDatasetError,
    UnknownHandleError,
    UnknownMetricError,
)

__all__ = ["HTTPError", "STATUS_REASONS", "error_payload", "status_for_exception"]

#: Reason phrases for every status the edge emits.
STATUS_REASONS = {
    200: "OK",
    201: "Created",
    202: "Accepted",
    204: "No Content",
    304: "Not Modified",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HTTPError(Exception):
    """A request failure with an HTTP status, raised by handlers/parsers.

    Args:
        status: the HTTP status code to respond with.
        message: human-readable explanation (becomes the JSON error body).
        headers: extra response headers (e.g. ``Allow`` on a 405).
    """

    def __init__(self, status: int, message: str, *, headers: "dict | None" = None):
        super().__init__(message)
        self.status = int(status)
        self.message = message
        self.headers = dict(headers) if headers else {}


#: Domain exception -> HTTP status.  Order matters: first match wins, so
#: subclasses must precede :class:`ReproError`.
_DOMAIN_STATUS = (
    (UnknownHandleError, 404),
    (UnknownDatasetError, 404),
    (UnknownAlgorithmError, 400),
    (UnknownMetricError, 400),
    (AlgorithmUnsupportedError, 400),
    (InvalidInputError, 400),
    (ReproError, 400),
)


def status_for_exception(exc: BaseException) -> int:
    """The HTTP status a raised exception maps to (500 when unknown)."""
    if isinstance(exc, HTTPError):
        return exc.status
    for exc_type, status in _DOMAIN_STATUS:
        if isinstance(exc, exc_type):
            return status
    return 500


def error_payload(status: int, message: str) -> dict:
    """The canonical JSON error body for a failure response."""
    return {"error": {"status": int(status), "message": str(message)}}
