"""The HTTP application: AsyncHeatMapService behind a REST tile/query API.

:class:`HeatMapHTTPApp` is the paper's "interactive influence exploration"
end state — a slippy-map-style serving edge a map client pans and zooms
against:

========================================  ===================================
``GET  /healthz``                         liveness + registry counts
``GET  /stats``                           service/HTTP/latency counters
``GET  /openapi.yaml``                    the machine-readable API contract
``POST /datasets``                        register client/facility arrays
``POST /build``                           kick a build by fingerprint (202)
``GET  /build/{handle}``                  poll build status
``POST /query/{handle}``                  JSON batch heat / rnn / top-k
``POST /update/{handle}``                 dynamic update batch (incremental)
``GET  /tiles/{handle}/{z}/{tx}/{ty}.png``  raster tile, ETag revalidation
``GET  /events/{handle}``                 SSE push-invalidation stream
========================================  ===================================

The connection/dispatch plumbing lives in :class:`BaseHTTPApp` so the
fleet proxy (:class:`~repro.fleet.proxy.FleetProxy`) can reuse it
verbatim; both apps support **readiness** (``/healthz?ready=1`` answers
503 until the app is attached to a running server, and again while
draining) and **graceful shutdown** (:meth:`HeatMapHTTPServer.shutdown`
drains in-flight requests and ends SSE streams cleanly before closing
connections — SIGTERM/SIGINT trigger it under :func:`serve`).

Every blocking computation runs through the wrapped
:class:`~repro.service.async_service.AsyncHeatMapService`, so concurrent
cold requests for one tile or one build fingerprint coalesce onto a single
render/sweep (``coalesced_tiles``/``coalesced_builds`` in ``/stats``).

**Cancellation propagation**: each request is handled in its own asyncio
task while the connection is watched for EOF; a client that disconnects
mid-request gets its task *cancelled*.  A cancelled coalescing leader
abandons its flight (followers re-lead and take the sync layer's cache
hit) and a cancelled follower simply drops off the shared future — an
abandoned viewer never kills a render other viewers are waiting on.

Run it::

    python -m repro serve-http --port 8080 --workers 8

or in-process (tests, examples, benchmarks)::

    with ThreadedHTTPServer(tile_size=128) as server:
        urllib.request.urlopen(server.url + "/healthz")
"""

from __future__ import annotations

import asyncio
import contextlib
import functools
import math
import secrets
import signal
import sys
import threading
import traceback
from dataclasses import dataclass, fields

import numpy as np

from ..dynamic import DynamicHeatMap
from ..faults import Deadline
from ..fleet.events import EventBroker, format_sse_event
from ..service.async_service import AsyncHeatMapService
from ..service.cache import LRUCache
from ..core.registry import REGISTRY
from ..service.fingerprint import fingerprint_build
from ..service.latency import LatencyRecorder
from ..service.service import request_fingerprint
from ..service.tiles import tile_bounds
from .errors import HTTPError, error_payload, status_for_exception
from .http import (
    ConnectionBuffer,
    Request,
    Response,
    read_request,
    write_response,
    write_stream_head,
)
from .router import Router
from .wire import (
    decode_dataset,
    decode_points,
    decode_updates,
    json_response,
    placeholder_tile_etag,
    render_tile_png,
    tile_etag,
)

__all__ = [
    "BaseHTTPApp",
    "HTTPStats",
    "HeatMapHTTPApp",
    "HeatMapHTTPServer",
    "ThreadedHTTPServer",
    "serve",
]

_METRICS = ("l1", "l2", "linf")
_REBUILD_MODES = ("auto", "incremental", "full")

#: One tile request must stay bounded: level 30 already addresses 4^30
#: tiles, far past float resolution of any world rect.
_MAX_TILE_ZOOM = 30

#: Terminal build records kept for polling before the oldest are pruned
#: (in-progress records are never pruned — their tasks are referenced).
_MAX_BUILD_RECORDS = 512


@dataclass
class HTTPStats:
    """Edge-level counters (mutated only on the server's event loop).

    ``cancelled_requests`` counts handler tasks cancelled because their
    client disconnected mid-request — the cancellation-propagation path.
    ``not_modified`` counts tile revalidations answered 304 without
    touching the render path.  ``shed_requests`` counts arrivals refused
    503 + ``Retry-After`` by admission control (the in-flight bound), and
    ``deadline_timeouts`` counts handlers cancelled because their
    ``X-Deadline`` budget ran out (answered 504).
    """

    connections: int = 0
    connections_open: int = 0
    requests: int = 0
    responses_2xx: int = 0
    responses_3xx: int = 0
    responses_4xx: int = 0
    responses_5xx: int = 0
    not_modified: int = 0
    cancelled_requests: int = 0
    shed_requests: int = 0
    deadline_timeouts: int = 0

    def count_status(self, status: int) -> None:
        """Bucket one response status into its class counter."""
        if status == 304:
            self.not_modified += 1
        bucket = f"responses_{status // 100}xx"
        if hasattr(self, bucket):
            setattr(self, bucket, getattr(self, bucket) + 1)

    def as_dict(self) -> dict:
        """The counters as a plain dict (the ``/stats`` ``http`` block)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


class BaseHTTPApp:
    """Connection/dispatch plumbing shared by the app and the fleet proxy.

    Owns everything that is not heat-map-specific: the router, the HTTP
    and latency counters, the SSE :class:`~repro.fleet.events.EventBroker`,
    the keep-alive connection loop with client-disconnect cancellation,
    streaming-response writing, and the readiness/draining lifecycle:

    * ``ready`` flips on when :meth:`startup` runs (the server calls it
      once the listener is bound) and off again on :meth:`begin_drain`;
      ``/healthz?ready=1`` answers 503 outside that window.
    * ``begin_drain`` also closes the event broker, ending every SSE
      stream cleanly (a viewer sees its stream end, never a 500), and
      makes in-flight keep-alive connections close after their current
      response; new requests on old connections answer 503.

    Subclasses register routes on ``self.router`` and may override
    :meth:`startup` / :meth:`aclose` / :meth:`aclose_sync`.

    **Admission control**: with ``max_inflight`` set, a request arriving
    while that many are already in flight is *shed* — answered 503 with
    ``Retry-After`` before any handler work, counted in
    ``shed_requests`` — so overload degrades to fast, explicit pushback
    instead of unbounded queueing.  ``/healthz`` is exempt: an overloaded
    replica must still answer its health probes.

    **Deadlines**: a request carrying ``X-Deadline: <seconds>`` is
    abandoned (504, ``deadline_timeouts``) the moment its budget runs
    out; the handler task is cancelled, which propagates into the
    coalescing layer exactly like a client disconnect.
    """

    def __init__(
        self,
        *,
        max_body_bytes: int = 64 * 1024 * 1024,
        max_inflight: "int | None" = None,
    ) -> None:
        self.max_body_bytes = int(max_body_bytes)
        self.max_inflight = None if max_inflight is None else int(max_inflight)
        self.latency = LatencyRecorder()
        self.http_stats = HTTPStats()
        self.events = EventBroker()
        self.router = Router()
        self._ready = False
        self._draining = False
        self._inflight = 0
        self._writers: "set[asyncio.StreamWriter]" = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def ready(self) -> bool:
        """True between :meth:`startup` and :meth:`begin_drain`."""
        return self._ready and not self._draining

    @property
    def draining(self) -> bool:
        """True once :meth:`begin_drain` ran (no way back)."""
        return self._draining

    @property
    def inflight_requests(self) -> int:
        """Requests (including open SSE streams) currently being served."""
        return self._inflight

    async def startup(self) -> None:
        """Mark the app ready; the server awaits this after binding."""
        self._ready = True

    def begin_drain(self) -> None:
        """Stop being ready, end SSE streams, close after each response."""
        self._draining = True
        self.events.close()

    def force_close_connections(self) -> None:
        """Abruptly close every tracked connection (drain-grace expiry)."""
        for writer in list(self._writers):
            writer.close()

    async def aclose(self) -> None:
        """Release owned resources (subclass hook; base owns none)."""

    def aclose_sync(self) -> None:
        """Thread-callable resource release (subclass hook)."""

    # ------------------------------------------------------------------
    # Request plumbing
    # ------------------------------------------------------------------
    async def dispatch(self, request: Request) -> Response:
        """Route one request to its handler; every failure becomes JSON.

        Cancellation (client disconnect) propagates out — the connection
        loop owns it; everything else is mapped through
        :func:`~repro.server.errors.status_for_exception`.
        """
        # HEAD is served by the GET handler; the connection loop strips
        # the body (RFC 9110: same headers, no content).
        method = "GET" if request.method == "HEAD" else request.method
        try:
            handler, params = self.router.match(method, request.path)
        except HTTPError as exc:
            self.http_stats.count_status(exc.status)
            return json_response(
                error_payload(exc.status, exc.message), exc.status,
                headers=exc.headers,
            )
        raw_deadline = request.headers.get("x-deadline")
        deadline: "Deadline | None" = None
        if raw_deadline is not None:
            try:
                deadline = Deadline.from_header(raw_deadline)
            except ValueError as exc:
                self.http_stats.count_status(400)
                return json_response(error_payload(400, str(exc)), 400)
        kind = handler.__name__.removeprefix("_handle_")
        with self.latency.timing(kind):
            try:
                if deadline is None:
                    response = await handler(request, **params)
                else:
                    # wait_for cancels the handler task on expiry; the
                    # cancellation propagates into its flight exactly like
                    # a client disconnect, so an expired tile request
                    # stops burning sweep/render CPU.
                    response = await asyncio.wait_for(
                        handler(request, **params), deadline.remaining()
                    )
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # noqa: BLE001 - edge boundary
                if deadline is not None and isinstance(
                    exc, (asyncio.TimeoutError, TimeoutError)
                ):
                    self.http_stats.deadline_timeouts += 1
                    response = json_response(
                        error_payload(
                            504, f"deadline of {deadline.budget:.3f}s exceeded"
                        ),
                        504,
                    )
                else:
                    status = status_for_exception(exc)
                    if status >= 500:
                        traceback.print_exc(file=sys.stderr)
                    headers = exc.headers if isinstance(exc, HTTPError) else {}
                    response = json_response(
                        error_payload(status, str(exc)), status, headers=headers
                    )
        self.http_stats.count_status(response.status)
        return response

    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One client connection: keep-alive loop + disconnect watching.

        While a handler task runs, a monitor task probes the socket; EOF
        before the response is ready means the client is gone, and the
        handler task is cancelled (the coalescing layer drops the
        abandoned waiter without killing any shared computation).

        A handler may return a *streaming* response (``Response.stream``);
        the loop then flushes chunks until the iterator (or the client)
        ends and closes the connection — streams are terminal.
        """
        buf = ConnectionBuffer(reader)
        self.http_stats.connections += 1
        self.http_stats.connections_open += 1
        self._writers.add(writer)
        try:
            while True:
                try:
                    request = await read_request(buf, max_body=self.max_body_bytes)
                except (ConnectionError, OSError):
                    break  # peer reset between requests
                except HTTPError as exc:
                    self.http_stats.count_status(exc.status)
                    await write_response(
                        writer,
                        json_response(
                            error_payload(exc.status, exc.message), exc.status
                        ),
                        keep_alive=False,
                    )
                    break
                if request is None:
                    break
                if self._draining:
                    # In-flight work drains; *new* requests do not start.
                    self.http_stats.count_status(503)
                    with contextlib.suppress(ConnectionError, OSError):
                        await write_response(
                            writer,
                            json_response(
                                error_payload(503, "server is draining"), 503
                            ),
                            keep_alive=False,
                        )
                    break
                if (
                    self.max_inflight is not None
                    and self._inflight >= self.max_inflight
                    and not request.path.startswith("/healthz")
                ):
                    # Load shedding: explicit, instant pushback beats an
                    # unbounded queue of doomed work.  The connection
                    # stays usable — the client backs off and retries.
                    self.http_stats.requests += 1
                    self.http_stats.shed_requests += 1
                    self.http_stats.count_status(503)
                    keep_alive = not request.wants_close and not self._draining
                    try:
                        await write_response(
                            writer,
                            json_response(
                                error_payload(
                                    503, "server is at capacity, retry shortly"
                                ),
                                503,
                                headers={"Retry-After": "1"},
                            ),
                            keep_alive=keep_alive,
                            suppress_body=request.method == "HEAD",
                        )
                    except (ConnectionError, OSError):
                        break
                    if not keep_alive:
                        break
                    continue
                self.http_stats.requests += 1
                self._inflight += 1
                try:
                    handler_task = asyncio.create_task(self.dispatch(request))
                    monitor = asyncio.create_task(buf.poll_eof())
                    try:
                        done, _pending = await asyncio.wait(
                            {handler_task, monitor},
                            return_when=asyncio.FIRST_COMPLETED,
                        )
                        if handler_task not in done and monitor.result():
                            # Client hung up mid-request: propagate
                            # cancellation into the pending handler (and
                            # thereby its flight).
                            handler_task.cancel()
                            with contextlib.suppress(asyncio.CancelledError):
                                await handler_task
                            self.http_stats.cancelled_requests += 1
                            break
                        response = await handler_task
                    finally:
                        monitor.cancel()
                        with contextlib.suppress(asyncio.CancelledError):
                            await monitor
                    if response.stream is not None:
                        await self._send_stream(writer, buf, request, response)
                        break
                    keep_alive = not request.wants_close and not self._draining
                    try:
                        await write_response(
                            writer, response, keep_alive=keep_alive,
                            suppress_body=request.method == "HEAD",
                        )
                    except (ConnectionError, OSError):
                        break
                finally:
                    self._inflight -= 1
                if not keep_alive:
                    break
        finally:
            self.http_stats.connections_open -= 1
            self._writers.discard(writer)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _send_stream(
        self,
        writer: asyncio.StreamWriter,
        buf: ConnectionBuffer,
        request: Request,
        response: Response,
    ) -> None:
        """Flush a streaming response until its iterator or client ends."""
        stream = response.stream
        try:
            await write_stream_head(writer, response)
        except (ConnectionError, OSError):
            with contextlib.suppress(Exception):
                await stream.aclose()
            return
        if request.method == "HEAD":
            with contextlib.suppress(Exception):
                await stream.aclose()
            return
        gen = stream.__aiter__()
        monitor = asyncio.create_task(buf.poll_eof())
        nxt: "asyncio.Task | None" = None
        try:
            while True:
                if nxt is None:
                    nxt = asyncio.create_task(gen.__anext__())
                done, _pending = await asyncio.wait(
                    {nxt, monitor}, return_when=asyncio.FIRST_COMPLETED
                )
                if nxt in done:
                    try:
                        chunk = nxt.result()
                    except StopAsyncIteration:
                        return  # clean end of stream (drain/handle close)
                    nxt = None
                    try:
                        writer.write(chunk)
                        await writer.drain()
                    except (ConnectionError, OSError):
                        self.http_stats.cancelled_requests += 1
                        return
                if monitor in done:
                    if monitor.result():
                        # Subscriber disconnected: stop streaming.
                        self.http_stats.cancelled_requests += 1
                        return
                    # The client sent bytes mid-stream (ignored): rearm.
                    monitor = asyncio.create_task(buf.poll_eof())
        finally:
            for task in (monitor, nxt):
                if task is not None:
                    task.cancel()
                    with contextlib.suppress(asyncio.CancelledError):
                        await task
            with contextlib.suppress(Exception):
                await gen.aclose()


class HeatMapHTTPApp(BaseHTTPApp):
    """Routes, handlers and registries over one ``AsyncHeatMapService``.

    Args:
        service: an existing async service to mount; by default a new one
            is created from the remaining keyword arguments.
        max_workers: executor bound of the default service (ignored when
            ``service`` is passed).
        build_workers: default process-worker count for cold sweeps
            (``HeatMapService(workers=...)``).
        max_points: largest accepted probe batch per ``/query`` request.
        max_body_bytes: largest accepted request body.
        max_inflight: admission-control bound — requests arriving past
            this many in flight are shed with 503 + ``Retry-After``
            (``None`` disables shedding; ``/healthz`` is always exempt).
        max_datasets: LRU capacity of the dataset registry — a registry
            of raw coordinate arrays must be bounded like every other
            cache in the stack; evicted ids answer 404 and the client
            re-POSTs (content-addressed ids make that loss-free).
        max_dynamic: most dynamic maps kept at once; past it the oldest
            ``dyn-N`` handle is invalidated and reports ``evicted``.
        max_png_tiles: LRU capacity of encoded PNG bytes (keyed by the
            tile's strong ETag), the warm-fetch fast path.
        default_cmap: tile colormap when the request has no ``?cmap=``.
        **service_kwargs: forwarded to ``HeatMapService`` (``max_results``,
            ``max_tiles``, ``tile_size``, ``store_dir``).

    The app must be *used* from a single event loop (the service's
    coalescing maps are loop-confined), but may be constructed anywhere —
    tests construct it, install observability hooks, then start the loop.
    """

    def __init__(
        self,
        service: "AsyncHeatMapService | None" = None,
        *,
        max_workers: int = 8,
        build_workers: "int | None" = None,
        max_points: int = 1_000_000,
        max_body_bytes: int = 64 * 1024 * 1024,
        max_inflight: "int | None" = None,
        max_datasets: int = 256,
        max_dynamic: int = 64,
        max_png_tiles: int = 1024,
        default_cmap: str = "heat",
        **service_kwargs,
    ) -> None:
        if service is None:
            service = AsyncHeatMapService(
                max_workers=max_workers, workers=build_workers, **service_kwargs
            )
        elif service_kwargs:
            raise TypeError(
                "pass either an existing service or HeatMapService kwargs, "
                f"not both (got {sorted(service_kwargs)})"
            )
        super().__init__(max_body_bytes=max_body_bytes, max_inflight=max_inflight)
        self.service = service
        self.max_points = int(max_points)
        self.default_cmap = default_cmap
        #: dataset id -> (clients, facilities | None); content-addressed,
        #: LRU-bounded like every other cache in the stack.
        self.datasets = LRUCache(max_datasets)
        #: build handle -> {"status": building|ready|failed, "error", "task"}.
        self._builds: "dict[str, dict]" = {}
        #: dynamic handle -> DynamicHeatMap (the /update targets); bounded
        #: like every registry here — the oldest map is dropped (and its
        #: service handle invalidated) past ``max_dynamic``.
        self._dynamic: "dict[str, DynamicHeatMap]" = {}
        self.max_dynamic = int(max_dynamic)
        self._dyn_seq = 0
        #: Fleet-unique component of dynamic handles: two replicas behind
        #: one proxy must never mint the same ``dyn-`` name (a collision
        #: would alias two different maps under one sticky pin).
        self._dyn_token = secrets.token_hex(4)
        #: etag -> encoded PNG bytes; strong ETags name exact bytes, so a
        #: hit skips the colormap + zlib encode on warm tile fetches.
        #: Purged in lockstep with the tile cache via the service's
        #: ``on_tiles_dropped`` hook (placeholder PNGs are never cached).
        self._png_cache = LRUCache(max(64, max_png_tiles))
        #: In-flight background (post-placeholder) tile renders, keyed by
        #: (handle, z, tx, ty, size) — one spawn per cold address.
        self._bg_renders: "dict[tuple, asyncio.Task]" = {}
        #: Tile-serving counters; their own lock because the purge hook
        #: fires on executor threads, unlike the loop-confined HTTPStats.
        self._tile_lock = threading.Lock()
        self._tile_counters = {
            "png_purged": 0,
            "placeholders_served": 0,
            "background_renders": 0,
        }
        self.service.service.on_tiles_dropped = self._on_tiles_dropped
        self.router.add("GET", "/healthz", self._handle_healthz)
        self.router.add("GET", "/stats", self._handle_stats)
        self.router.add("GET", "/openapi.yaml", self._handle_openapi)
        self.router.add("POST", "/datasets", self._handle_datasets)
        self.router.add("POST", "/build", self._handle_build)
        self.router.add("GET", "/build/{handle}", self._handle_build_status)
        self.router.add("POST", "/query/{handle}", self._handle_query)
        self.router.add("POST", "/update/{handle}", self._handle_update)
        self.router.add(
            "GET", "/tiles/{handle}/{z:int}/{tx:int}/{ty:int}.png",
            self._handle_tile,
        )
        self.router.add("GET", "/events/{handle}", self._handle_events)

    async def _run(self, fn, *args, **kwargs):
        """Run a blocking callable on the service's executor."""
        if kwargs or args:
            fn = functools.partial(fn, *args, **kwargs)
        return await self.service._run(fn)

    async def aclose(self) -> None:
        """Release the owned service executor off-loop."""
        await self.service.aclose()

    def aclose_sync(self) -> None:
        """Release the owned service executor (callable from any thread)."""
        self.service.close()

    # ------------------------------------------------------------------
    # Introspection endpoints
    # ------------------------------------------------------------------
    async def _handle_healthz(self, request: Request) -> Response:
        """Liveness (and, with ``?ready=1``, readiness).

        Liveness is cheap, allocation-only, and never touches the sweep
        path: a live-but-starting process answers 200.  The readiness
        form answers 503 with ``status: starting|draining`` until the app
        is attached to a running server and again once draining — the
        fleet proxy health-checks replicas with it before routing.
        """
        building = sum(
            1 for s in self._builds.values() if s["status"] == "building"
        )
        body = {
            "status": "ok",
            "handles": len(self.service.handles()),
            "datasets": len(self.datasets),
            "builds_in_progress": building,
        }
        status = 200
        if request.query.get("ready", "") not in ("", "0", "false"):
            if not self.ready:
                body["status"] = "draining" if self.draining else "starting"
                status = 503
        return json_response(body, status)

    def _on_tiles_dropped(self, handle, rects, world) -> None:
        """Purge encoded PNGs of dropped tiles (fires on any thread).

        A full drop purges every PNG of the handle; a partial drop parses
        the tile address back out of each strong-ETag key and purges only
        PNGs whose tiles intersect the dirty rects — the PNG cache stays
        in lockstep with the tile cache instead of letting
        stale-generation bytes squat in the LRU until eviction.
        """
        prefix = f'"{handle[:16]}.'

        def doomed(etag: str) -> bool:
            if not etag.startswith(prefix):
                return False
            if rects is None:
                return True
            try:
                # '"h16.z.tx.ty.size.cmap.vV.gG"' — the dotted vmax repr
                # sits safely past the leading address fields.
                z, tx, ty = etag.strip('"').split(".")[1:4]
                bounds = tile_bounds(world, int(z), int(tx), int(ty))
            except Exception:
                return True  # unparseable keys must never retain stale bytes
            return any(bounds.intersects(r) for r in rects)

        purged = self._png_cache.purge(doomed)
        if purged:
            with self._tile_lock:
                self._tile_counters["png_purged"] += purged

    async def _handle_stats(self, request: Request) -> Response:
        """The full observability surface in one document.

        ``service`` is :meth:`HeatMapService.stats_snapshot` (cache +
        coalescing counters), ``http`` the edge counters, ``latency`` the
        per-endpoint percentile records, ``tiles`` the progressive-tile
        surface (PNG-cache population and purges, placeholders served,
        background renders spawned).
        """
        with self._tile_lock:
            tiles = dict(self._tile_counters)
        tiles["png_cache_entries"] = len(self._png_cache)
        tiles["background_renders_inflight"] = len(self._bg_renders)
        return json_response({
            "service": self.service.stats_snapshot(),
            "http": self.http_stats.as_dict(),
            "latency": self.latency.snapshot(),
            "tiles": tiles,
        })

    async def _handle_openapi(self, request: Request) -> Response:
        """Serve the generated OpenAPI document (the docs/ copy's source)."""
        from .openapi import spec_yaml

        return Response(
            body=spec_yaml().encode(), content_type="application/yaml"
        )

    # ------------------------------------------------------------------
    # Datasets and builds
    # ------------------------------------------------------------------
    async def _handle_datasets(self, request: Request) -> Response:
        """Register client/facility coordinate arrays; returns a dataset id.

        Ids are content-addressed (a fingerprint of the arrays), so
        re-posting identical data is idempotent.
        """
        clients, facilities = decode_dataset(request.json())
        digest = await self._run(
            fingerprint_build, clients, facilities,
            metric="dataset", algorithm="dataset",
        )
        dataset_id = f"ds-{digest[:16]}"
        created = dataset_id not in self.datasets
        self.datasets.put(dataset_id, (clients, facilities))
        return json_response(
            {
                "dataset": dataset_id,
                "n_clients": len(clients),
                "n_facilities": len(facilities) if facilities is not None else 0,
            },
            201 if created else 200,
        )

    def _dataset(self, payload: dict) -> "tuple[np.ndarray, np.ndarray | None]":
        dataset_id = payload.get("dataset")
        if not isinstance(dataset_id, str):
            raise HTTPError(400, 'build body must carry "dataset": "<id>"')
        entry = self.datasets.get(dataset_id)
        if entry is None:
            raise HTTPError(
                404,
                f"unknown dataset {dataset_id!r} (never registered, or "
                "evicted — POST /datasets again)",
            )
        return entry

    @staticmethod
    def _bool_field(payload: dict, name: str) -> bool:
        """A strict JSON boolean: "false" (a string) must 400, not enable."""
        value = payload.get(name, False)
        if not isinstance(value, bool):
            raise HTTPError(400, f'"{name}" must be a JSON boolean')
        return value

    @classmethod
    def _build_params(cls, payload: dict) -> dict:
        """Validate the build-configuration fields shared by both paths."""
        metric = str(payload.get("metric", "l2")).lower()
        if metric not in _METRICS:
            raise HTTPError(400, f"metric must be one of {_METRICS}")
        try:
            k = int(payload.get("k", 1))
            workers = payload.get("workers")
            workers = None if workers is None else int(workers)
        except (TypeError, ValueError):
            raise HTTPError(400, '"k" and "workers" must be integers') from None
        if k < 1:
            raise HTTPError(400, '"k" must be >= 1')
        # Engine knobs ride in explicitly; which engines accept them is the
        # registry's call (unknown knobs 400 via normalized_options).
        engine_options: dict = {}
        if "recall" in payload:
            try:
                engine_options["recall"] = float(payload["recall"])
            except (TypeError, ValueError):
                raise HTTPError(400, '"recall" must be a number') from None
            if not 0.0 < engine_options["recall"] <= 1.0:
                raise HTTPError(400, '"recall" must be in (0, 1]')
        if "seed" in payload:
            try:
                engine_options["seed"] = int(payload["seed"])
            except (TypeError, ValueError):
                raise HTTPError(400, '"seed" must be an integer') from None
        return {
            "metric": metric,
            "algorithm": str(payload.get("algorithm", "crest")).lower(),
            "monochromatic": cls._bool_field(payload, "monochromatic"),
            "k": k,
            "workers": workers,
            "engine_options": engine_options or None,
        }

    async def _handle_build(self, request: Request) -> Response:
        """Kick (or recall) a build; 202 + poll URL until it is resident.

        Static builds are keyed by input fingerprint: posting the same
        body twice returns the same handle, and a resident handle answers
        200/ready immediately.  ``"dynamic": true`` instead attaches a
        fresh ``DynamicHeatMap`` (unique handle per request) whose
        ``/update`` endpoint routes through the incremental rebuild path.
        """
        payload = request.json()
        if not isinstance(payload, dict):
            raise HTTPError(400, "build body must be a JSON object")
        clients, facilities = self._dataset(payload)
        params = self._build_params(payload)
        if self._bool_field(payload, "dynamic"):
            return await self._start_dynamic_build(
                payload, clients, facilities, params
            )
        handle = await self._run(
            request_fingerprint, clients, facilities,
            metric=params["metric"], algorithm=params["algorithm"],
            monochromatic=params["monochromatic"], k=params["k"],
            engine_options=params["engine_options"],
        )
        if handle in self.service.handles():
            self._record_build(handle, "ready", None)
            return json_response({"handle": handle, "status": "ready"})
        state = self._builds.get(handle)
        if state is None or state["status"] != "building":
            state = {"status": "building", "error": None}
            state["task"] = asyncio.create_task(
                self._run_build(handle, clients, facilities, params)
            )
            self._builds[handle] = state
        return json_response(
            {"handle": handle, "status": "building", "poll": f"/build/{handle}"},
            202,
            headers={"Location": f"/build/{handle}"},
        )

    def _record_build(self, handle: str, status: str, error: "str | None") -> None:
        """Record a terminal build state, pruning the oldest terminal
        records so the registry stays bounded (building entries are kept —
        their tasks are live)."""
        self._builds[handle] = {"status": status, "error": error}
        excess = len(self._builds) - _MAX_BUILD_RECORDS
        if excess > 0:
            doomed = [
                h for h, s in self._builds.items()
                if s["status"] != "building"
            ][:excess]
            for h in doomed:
                del self._builds[h]

    async def _run_build(self, handle, clients, facilities, params) -> None:
        """The background build task body; records terminal status."""
        try:
            await self.service.build(
                clients, facilities, metric=params["metric"],
                algorithm=params["algorithm"],
                monochromatic=params["monochromatic"], k=params["k"],
                workers=params["workers"], fingerprint=handle,
                engine_options=params["engine_options"],
            )
        except asyncio.CancelledError:
            self._record_build(handle, "failed", "cancelled")
            raise
        except Exception as exc:  # noqa: BLE001 - reported via polling
            self._record_build(handle, "failed", str(exc))
        else:
            self._record_build(handle, "ready", None)

    async def _start_dynamic_build(
        self, payload, clients, facilities, params
    ) -> Response:
        """Attach a new ``DynamicHeatMap`` under a fresh fleet-unique handle.

        Handles are ``dyn-<token>-<seq>`` where the token is minted once
        per app from the OS entropy pool: the ``dyn-`` prefix keeps the
        proxy's sticky-pin routing working, and the token keeps two
        replicas behind one proxy from ever minting colliding names.
        """
        rebuild = str(payload.get("rebuild", "auto"))
        if rebuild not in _REBUILD_MODES:
            raise HTTPError(400, f"rebuild must be one of {_REBUILD_MODES}")
        if params["monochromatic"] or params["k"] != 1:
            raise HTTPError(
                400, "dynamic maps support monochromatic=false, k=1 only"
            )
        if REGISTRY.get(params["algorithm"]).builder is not None:
            raise HTTPError(
                400,
                "dynamic maps run the exact incremental sweep; approximate "
                f"engines ({params['algorithm']!r}) build static handles only",
            )
        if params["engine_options"]:
            raise HTTPError(400, "dynamic maps accept no engine options")
        if facilities is None:
            raise HTTPError(400, "dynamic maps need explicit facilities")
        self._dyn_seq += 1
        handle = f"dyn-{self._dyn_token}-{self._dyn_seq}"
        state = {"status": "building", "error": None}

        def make() -> DynamicHeatMap:
            dyn = DynamicHeatMap(
                clients, facilities, metric=params["metric"], rebuild=rebuild
            )
            self.service.attach_dynamic(dyn, name=handle)
            return dyn

        async def run() -> None:
            try:
                self._dynamic[handle] = await self._run(make)
                # Bound the registry: the oldest dynamic map is dropped
                # and its handle invalidated (polls then say "evicted").
                while len(self._dynamic) > self.max_dynamic:
                    oldest = next(iter(self._dynamic))
                    del self._dynamic[oldest]
                    self.service.invalidate(oldest)
            except asyncio.CancelledError:
                self._record_build(handle, "failed", "cancelled")
                raise
            except Exception as exc:  # noqa: BLE001 - reported via polling
                self._record_build(handle, "failed", str(exc))
            else:
                self._record_build(handle, "ready", None)

        state["task"] = asyncio.create_task(run())
        self._builds[handle] = state
        return json_response(
            {"handle": handle, "status": "building", "poll": f"/build/{handle}"},
            202,
            headers={"Location": f"/build/{handle}"},
        )

    async def _handle_build_status(self, request: Request, handle: str) -> Response:
        """Poll a build kicked by ``POST /build``.

        A handle that finished building but has since been LRU-evicted
        from the service reports ``"evicted"`` (not a stale ``"ready"``):
        the client re-POSTs ``/build`` — a promotion from the persistent
        store or a re-sweep, never a ready-but-404 contradiction.
        """
        if handle in self.service.handles():
            return json_response({"handle": handle, "status": "ready"})
        state = self._builds.get(handle)
        if state is None:
            raise HTTPError(404, f"unknown build handle {handle!r}")
        status = state["status"]
        if status == "ready":
            status = "evicted"
        body = {"handle": handle, "status": status}
        if state["error"] is not None:
            body["error"] = state["error"]
        return json_response(body, 202 if status == "building" else 200)

    # ------------------------------------------------------------------
    # Queries, updates, tiles
    # ------------------------------------------------------------------
    async def _handle_query(self, request: Request, handle: str) -> Response:
        """Batch point queries: ``kind`` = "heat" | "rnn" | "top-k"."""
        payload = request.json()
        if not isinstance(payload, dict):
            raise HTTPError(400, "query body must be a JSON object")
        kind = payload.get("kind", "heat")
        if kind == "top-k":
            try:
                k = int(payload.get("k", 5))
            except (TypeError, ValueError):
                raise HTTPError(400, '"k" must be an integer') from None
            if k < 1:
                raise HTTPError(400, '"k" must be >= 1')
            heats = await self.service.top_k_heats(handle, k)
            return json_response({"handle": handle, "kind": kind, "heats": heats})
        points = decode_points(payload, max_points=self.max_points)
        if kind == "heat":
            heats = await self.service.heat_at_many(handle, points)
            return json_response({
                "handle": handle, "kind": kind, "n": len(heats), "heats": heats,
            })
        if kind == "rnn":
            rnn = await self.service.rnn_at_many(handle, points)
            return json_response({
                "handle": handle, "kind": kind, "n": len(rnn),
                "rnn": [sorted(s) for s in rnn],
            })
        raise HTTPError(400, f'unknown query kind {kind!r} (heat | rnn | top-k)')

    async def _handle_update(self, request: Request, handle: str) -> Response:
        """Apply a dynamic update batch; rebuilds stay lazy and incremental.

        The response reports the map's (still pre-rebuild) version; the
        next query or tile fetch triggers the dirty-band re-sweep, and the
        service drops only tiles intersecting the dirty region.
        """
        dyn = self._dynamic.get(handle)
        if dyn is None:
            if handle in self.service.handles():
                raise HTTPError(
                    409,
                    f"handle {handle!r} is a static build; only dynamic "
                    'handles (built with "dynamic": true) accept updates',
                )
            raise HTTPError(404, f"unknown handle {handle!r}")
        updates = decode_updates(request.json())

        def apply() -> "list[int | None]":
            # Atomic batch: validate every operation against the (locked)
            # handle sets before applying any, so a bad op at position i
            # can never leave the prefix silently applied — a 400 means
            # nothing changed and the whole batch is safely retryable.
            with dyn.batch():
                clients = set(dyn.assignment.client_handles())
                facilities = set(dyn.assignment.facility_handles())
                # Simulate the batch op by op: adds raise the facility
                # count (their handles are unknowable mid-validation, so
                # later ops cannot reference them by id, but counts —
                # e.g. "last facility" — must see them).
                n_facilities = len(facilities)
                for i, (op, kw) in enumerate(updates):
                    if op == "remove_facility" and n_facilities <= 1:
                        raise HTTPError(
                            400, f"update #{i}: cannot remove the last facility"
                        )
                    if "handle" in kw:
                        pool = clients if op.endswith("client") else facilities
                        if kw["handle"] not in pool:
                            kind = "client" if pool is clients else "facility"
                            raise HTTPError(
                                400,
                                f"update #{i} ({op}): unknown {kind} "
                                f"handle {kw['handle']}",
                            )
                    if op == "remove_client":
                        clients.discard(kw["handle"])
                    elif op == "remove_facility":
                        facilities.discard(kw["handle"])
                        n_facilities -= 1
                    elif op == "add_facility":
                        n_facilities += 1
                results: "list[int | None]" = []
                for op, kw in updates:
                    method = getattr(dyn, op)
                    if op.startswith("add"):
                        results.append(method(kw["x"], kw["y"]))
                    elif op.startswith("move"):
                        method(kw["handle"], kw["x"], kw["y"])
                        results.append(None)
                    else:
                        method(kw["handle"])
                        results.append(None)
                return results

        results = await self._run(apply)
        # Push invalidation: every /events/{handle} subscriber (viewers,
        # and the fleet proxy relaying to *its* viewers) learns of the
        # bump now, instead of discovering it on the next ETag poll.
        self.events.publish(handle, "update", {
            "handle": handle,
            "version": dyn.version,
            "stale": dyn.dirty,
            "applied": len(updates),
        })
        return json_response({
            "handle": handle,
            "applied": len(updates),
            "results": results,
            "version": dyn.version,
            "stale": dyn.dirty,
        })

    def _spawn_tile_render(
        self, handle: str, z: int, tx: int, ty: int, size: int
    ) -> None:
        """Kick the real render for a placeholder-answered tile.

        Deduped per tile address, so a storm of placeholder responses
        costs one background render (which itself coalesces with any
        foreground fetch of the same tile).  Failures are swallowed —
        the next non-placeholder fetch will surface them; cancellation
        on shutdown is clean (the task is loop-owned).
        """
        key = (handle, z, tx, ty, size)
        if self._draining or key in self._bg_renders:
            return
        task = asyncio.create_task(
            self.service.tile(handle, z, tx, ty, tile_size=size)
        )
        self._bg_renders[key] = task

        def reap(t: asyncio.Task, key=key) -> None:
            self._bg_renders.pop(key, None)
            if not t.cancelled():
                t.exception()  # consume; the foreground path re-raises

        task.add_done_callback(reap)
        with self._tile_lock:
            self._tile_counters["background_renders"] += 1

    async def _handle_tile(
        self, request: Request, handle: str, z: int, tx: int, ty: int
    ) -> Response:
        """One raster tile as PNG, with generation-based revalidation.

        ``If-None-Match`` against the current ETag short-circuits to 304
        before any render; otherwise the fetch coalesces with every other
        cold request for the same tile and the PNG is encoded off-loop.

        When the tile is cold but a coarser zoom of it is cached, the
        response is an instant crop+upsampled *placeholder* — marked by
        the ``X-Tile-Placeholder`` header (the source zoom) and a weak
        ETag — while the real render is kicked off in the background;
        revalidation with the weak ETag converges on the real tile.
        ``?placeholder=0`` opts a request out (always the real tile).
        """
        if not 0 <= z <= _MAX_TILE_ZOOM:
            raise HTTPError(400, f"z must be in [0, {_MAX_TILE_ZOOM}]")
        try:
            size = int(request.query.get("size", self.service.service.tile_size))
        except ValueError:
            raise HTTPError(400, "size must be an integer") from None
        if not 1 <= size <= 2048:
            raise HTTPError(400, "size must be in [1, 2048]")
        cmap = request.query.get("cmap", self.default_cmap)
        vmax = None
        if "vmax" in request.query:
            try:
                vmax = float(request.query["vmax"])
            except ValueError:
                raise HTTPError(400, "vmax must be a number") from None
            if not math.isfinite(vmax):
                raise HTTPError(400, "vmax must be finite")
        # Settle any pending dynamic refresh (and 404 unknown handles)
        # before reading the generations the ETag is derived from.  The
        # ETag carries the *per-tile* generation — a partial invalidation
        # only changes validators of tiles it actually dirtied — while the
        # handle-wide generation stays the race guard for cache admission.
        await self.service.result(handle)
        generation = self.service.service.generation(handle)
        tile_gen = self.service.service.tile_generation(handle, z, tx, ty)
        etag = tile_etag(handle, z, tx, ty, size, cmap, vmax, tile_gen)
        if_none_match = request.headers.get("if-none-match", "")
        inm = {t.strip() for t in if_none_match.split(",")}
        if etag in inm:
            return Response(status=304, headers={"ETag": etag})
        # A strong ETag names the exact bytes: warm fetches skip both the
        # grid lookup and the colormap+zlib encode.
        png = self._png_cache.get(etag)
        if png is None:
            want_placeholder = z > 0 and request.query.get(
                "placeholder", "1"
            ).lower() not in ("0", "false", "no")
            if want_placeholder:
                ph = await self.service.placeholder_tile(
                    handle, z, tx, ty, tile_size=size
                )
                if ph is not None:
                    grid, _bounds, source_z = ph
                    weak = placeholder_tile_etag(etag, source_z)
                    self._spawn_tile_render(handle, z, tx, ty, size)
                    headers = {
                        "ETag": weak,
                        "Cache-Control": "no-cache",
                        "X-Tile-Placeholder": str(source_z),
                    }
                    if weak in inm:
                        # Still cold: the degraded bytes the client holds
                        # are still the best instant answer.
                        return Response(status=304, headers=headers)
                    body = await self._run(render_tile_png, grid, cmap, vmax)
                    with self._tile_lock:
                        self._tile_counters["placeholders_served"] += 1
                    return Response(
                        body=body, content_type="image/png", headers=headers
                    )
            grid, _bounds = await self.service.tile(
                handle, z, tx, ty, tile_size=size
            )
            png = await self._run(render_tile_png, grid, cmap, vmax)
            if self.service.service.generation(handle) == generation:
                self._png_cache.put(etag, png)
        return Response(
            body=png,
            content_type="image/png",
            headers={"ETag": etag, "Cache-Control": "no-cache"},
        )

    async def _handle_events(self, request: Request, handle: str) -> Response:
        """SSE push-invalidation stream for one handle.

        The stream opens with a ``hello`` frame carrying the handle's
        current version/generation (so a subscriber knows what "current"
        means without a separate poll), then yields one ``update`` frame
        per applied ``POST /update`` batch.  It ends cleanly — EOF, never
        an error — when the server drains.  Static handles are accepted
        too (their stream simply never fires), but a wholly unknown
        handle answers 404.
        """
        known = (
            handle in self._dynamic
            or handle in self.service.handles()
            or handle in self._builds
        )
        if not known:
            raise HTTPError(404, f"unknown handle {handle!r}")
        if self._draining:
            raise HTTPError(503, "server is draining")
        dyn = self._dynamic.get(handle)
        hello = {
            "handle": handle,
            "version": dyn.version if dyn is not None else 0,
            "generation": self.service.service.generation(handle),
        }
        queue = self.events.subscribe(handle)
        broker = self.events

        async def stream():
            try:
                yield format_sse_event(
                    "hello", hello, event_id=broker.last_seq(handle)
                )
                while True:
                    frame = await queue.get()
                    if frame is None:
                        return  # drained/closed: end the stream cleanly
                    yield frame
            finally:
                broker.unsubscribe(handle, queue)

        return Response(
            content_type="text/event-stream",
            headers={"Cache-Control": "no-cache"},
            stream=stream(),
        )


class HeatMapHTTPServer:
    """Bind a :class:`HeatMapHTTPApp` to a TCP port on the current loop."""

    def __init__(
        self, app: HeatMapHTTPApp, host: str = "127.0.0.1", port: int = 8080
    ) -> None:
        self.app = app
        self.host = host
        self.port = port
        self._server: "asyncio.base_events.Server | None" = None

    async def start(self) -> int:
        """Start accepting connections; returns the bound port.

        Awaits the app's :meth:`BaseHTTPApp.startup` once the listener is
        bound — after this returns, ``/healthz?ready=1`` answers 200.
        """
        self._server = await asyncio.start_server(
            self.app.handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        await self.app.startup()
        return self.port

    async def serve_forever(self) -> None:
        """Block serving until cancelled."""
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def shutdown(self, grace: float = 10.0) -> None:
        """Graceful drain: finish in-flight work, then close everything.

        The sequence a restarting fleet must not turn into viewer 500s:

        1. readiness flips off (the proxy stops routing here) and every
           SSE stream ends cleanly (broker close — subscribers see their
           stream end, not an error);
        2. the listener closes (no new connections);
        3. in-flight requests get up to ``grace`` seconds to complete —
           responses go out with ``Connection: close``;
        4. whatever remains is force-closed, and the executor released.
        """
        self.app.begin_drain()
        if self._server is not None:
            self._server.close()
            with contextlib.suppress(Exception):
                await self._server.wait_closed()
            self._server = None
        loop = asyncio.get_running_loop()
        deadline = loop.time() + max(0.0, grace)
        while self.app.inflight_requests > 0 and loop.time() < deadline:
            await asyncio.sleep(0.02)
        self.app.force_close_connections()
        await self.app.aclose()

    async def aclose(self) -> None:
        """Stop accepting, close the listener, release the executor."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service_aclose()

    async def service_aclose(self) -> None:
        """Shut the app's owned resources down off-loop."""
        await self.app.aclose()


async def serve(
    host: str = "127.0.0.1",
    port: int = 8080,
    *,
    on_bound=None,
    app: "BaseHTTPApp | None" = None,
    drain_grace: float = 10.0,
    **app_kwargs,
) -> None:
    """Build an app and serve it until SIGTERM/SIGINT (the CLI body).

    ``on_bound(port)`` fires once the listener is up — the CLI uses it to
    announce the address (the library itself never prints).  ``app``
    mounts a pre-built application (the fleet proxy) instead of
    constructing a :class:`HeatMapHTTPApp` from ``**app_kwargs``.

    SIGTERM and SIGINT trigger a *graceful* shutdown: in-flight requests
    get ``drain_grace`` seconds to finish and SSE streams end cleanly
    (see :meth:`HeatMapHTTPServer.shutdown`) — a supervisor restarting a
    replica never 500s its viewers.
    """
    if app is None:
        app = HeatMapHTTPApp(**app_kwargs)
    elif app_kwargs:
        raise TypeError(
            "pass either a pre-built app or app kwargs, not both "
            f"(got {sorted(app_kwargs)})"
        )
    server = HeatMapHTTPServer(app, host, port)
    bound = await server.start()
    if on_bound is not None:
        on_bound(bound)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    installed: "list[signal.Signals]" = []
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, stop.set)
            installed.append(sig)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # platform without loop signal handlers: Ctrl-C still works
    try:
        await stop.wait()
    finally:
        for sig in installed:
            loop.remove_signal_handler(sig)
        await server.shutdown(grace=drain_grace)


class ThreadedHTTPServer:
    """The server on a background thread — tests, examples, benchmarks.

    Starts an event loop in a daemon thread, binds an ephemeral (or given)
    port, and exposes ``url`` for plain blocking clients
    (``urllib.request``) in the calling thread.  Usable as a context
    manager; :meth:`close` stops the loop and joins the thread.

    Args:
        app: an existing app (hooks may be pre-installed); by default one
            is built from ``**app_kwargs``.
        host/port: bind address; port 0 picks a free port.
    """

    def __init__(
        self,
        app: "HeatMapHTTPApp | None" = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        **app_kwargs,
    ) -> None:
        self.app = app if app is not None else HeatMapHTTPApp(**app_kwargs)
        self.host = host
        self.port = port
        self._ready = threading.Event()
        self._startup_error: "BaseException | None" = None
        self._loop: "asyncio.AbstractEventLoop | None" = None
        self._stop: "asyncio.Event | None" = None
        self._http_server: "HeatMapHTTPServer | None" = None
        self._thread = threading.Thread(
            target=self._thread_main, name="rnnhm-http", daemon=True
        )

    @property
    def url(self) -> str:
        """Base URL of the running server (no trailing slash)."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ThreadedHTTPServer":
        """Start the server thread; returns once the port is bound."""
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def close(self) -> None:
        """Stop the loop, join the thread, release the service executor.

        Idempotent: closing an already-closed (or never-started) server is
        a no-op, so a supervisor may always close on the way out.
        """
        if self._loop is not None and self._stop is not None:
            with contextlib.suppress(RuntimeError):  # loop already closed
                self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread.is_alive():
            self._thread.join(timeout=30)
        self.app.aclose_sync()

    def shutdown(self, grace: float = 5.0) -> None:
        """Gracefully drain (see :meth:`HeatMapHTTPServer.shutdown`), then
        stop the loop and join the thread.  Unlike :meth:`close` — which
        abruptly stops the loop — in-flight requests get up to ``grace``
        seconds to complete and SSE streams end cleanly first."""
        if self._loop is not None and self._http_server is not None:
            future = asyncio.run_coroutine_threadsafe(
                self._http_server.shutdown(grace), self._loop
            )
            with contextlib.suppress(Exception):
                future.result(timeout=grace + 30)
        self.close()

    def __enter__(self) -> "ThreadedHTTPServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # noqa: BLE001 - surfaced via start()
            if not self._ready.is_set():
                self._startup_error = exc
                self._ready.set()
            else:
                traceback.print_exc(file=sys.stderr)

    async def _main(self) -> None:
        server = HeatMapHTTPServer(self.app, self.host, self.port)
        self._http_server = server
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        try:
            self.port = await server.start()
        except BaseException as exc:  # noqa: BLE001 - surfaced via start()
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            if server._server is not None:  # None after a graceful shutdown
                server._server.close()
                await server._server.wait_closed()
                # Abrupt close: snap every live connection shut and let
                # the handler tasks see EOF and finish on their own —
                # asyncio.run would otherwise cancel them mid-read, and
                # the streams machinery logs each such cancellation.
                self.app.begin_drain()
                self.app.force_close_connections()
                deadline = asyncio.get_running_loop().time() + 1.0
                while (self.app._writers
                       and asyncio.get_running_loop().time() < deadline):
                    await asyncio.sleep(0.01)
