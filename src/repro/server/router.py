"""Pattern-based request routing for the HTTP edge.

Routes are declared with slippy-map-style placeholder patterns —
``/tiles/{handle}/{z:int}/{tx:int}/{ty:int}.png`` — compiled to regular
expressions once at registration.  ``{name}`` matches one path segment as
a string, ``{name:int}`` matches and converts an integer.  Matching
distinguishes "no such path" (404) from "path exists, wrong method"
(405 with an ``Allow`` header), and the route table is introspectable
(:meth:`Router.routes`) so the OpenAPI document can be checked against it
by a test instead of drifting.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from .errors import HTTPError

__all__ = ["Route", "Router"]

_PLACEHOLDER = re.compile(r"\{([a-zA-Z_][a-zA-Z0-9_]*)(?::(int))?\}")


def _compile(pattern: str):
    """A route pattern -> compiled regex + per-parameter converters."""
    regex = ["^"]
    converters: "dict[str, type]" = {}
    pos = 0
    for match in _PLACEHOLDER.finditer(pattern):
        regex.append(re.escape(pattern[pos : match.start()]))
        name, kind = match.group(1), match.group(2)
        if kind == "int":
            regex.append(f"(?P<{name}>-?\\d+)")
            converters[name] = int
        else:
            regex.append(f"(?P<{name}>[^/]+)")
        pos = match.end()
    regex.append(re.escape(pattern[pos:]))
    regex.append("$")
    return re.compile("".join(regex)), converters


@dataclass(frozen=True)
class Route:
    """One registered endpoint: method + pattern + handler callable."""

    method: str
    pattern: str
    handler: object

    @property
    def openapi_path(self) -> str:
        """The pattern in OpenAPI syntax (``{name:int}`` -> ``{name}``)."""
        return _PLACEHOLDER.sub(lambda m: "{" + m.group(1) + "}", self.pattern)


class Router:
    """Method+path dispatch over placeholder patterns."""

    def __init__(self) -> None:
        self._routes: "list[tuple[Route, object, dict]]" = []

    def add(self, method: str, pattern: str, handler) -> Route:
        """Register ``handler`` for ``method`` requests matching ``pattern``."""
        route = Route(method.upper(), pattern, handler)
        regex, converters = _compile(pattern)
        self._routes.append((route, regex, converters))
        return route

    def routes(self) -> "list[Route]":
        """Every registered route, in registration order."""
        return [route for route, _regex, _conv in self._routes]

    def match(self, method: str, path: str) -> "tuple[object, dict]":
        """Resolve a request to ``(handler, path_params)``.

        Raises:
            HTTPError: 404 when no pattern matches the path, 405 (with an
                ``Allow`` header) when patterns match under other methods.
        """
        method = method.upper()
        allowed: "set[str]" = set()
        for route, regex, converters in self._routes:
            found = regex.match(path)
            if not found:
                continue
            if route.method != method:
                allowed.add(route.method)
                continue
            params = found.groupdict()
            for name, conv in converters.items():
                params[name] = conv(params[name])
            return route.handler, params
        if allowed:
            raise HTTPError(
                405,
                f"{method} not allowed for {path} (try {'/'.join(sorted(allowed))})",
                headers={"Allow": ", ".join(sorted(allowed))},
            )
        raise HTTPError(404, f"no route for {path}")
