"""Minimal HTTP/1.1 over asyncio streams — the edge's only transport.

The serving edge deliberately takes no web-framework dependency: the
protocol subset a tile/query server needs (request line, headers,
``Content-Length`` bodies, keep-alive, ``ETag``/``If-None-Match``) is
small, and owning the read loop is what lets the connection handler watch
for client disconnects and *cancel* the in-flight request task — the
cancellation-propagation behavior frameworks hide.

:class:`ConnectionBuffer` wraps a ``StreamReader`` with a pushback buffer
so the disconnect monitor can probe the socket for EOF between pipelined
requests without losing bytes; :func:`read_request` parses one request
from it and :func:`write_response` serializes a :class:`Response`.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, unquote, urlsplit

from .errors import STATUS_REASONS, HTTPError

__all__ = [
    "ConnectionBuffer",
    "Request",
    "Response",
    "read_request",
    "read_response",
    "write_response",
    "write_stream_head",
]

#: Protocol guard rails (per request).
MAX_HEADER_BYTES = 64 * 1024
MAX_BODY_BYTES = 64 * 1024 * 1024

_CRLF2 = b"\r\n\r\n"


class ConnectionBuffer:
    """A ``StreamReader`` with pushback, shared by parser and monitor.

    The request parser consumes from here; the disconnect monitor calls
    :meth:`poll_eof` while a handler runs, and any byte it reads ahead
    (the start of a pipelined request) is appended to the buffer instead
    of being lost.
    """

    def __init__(self, reader: asyncio.StreamReader) -> None:
        self.reader = reader
        self._buf = bytearray()

    async def _fill(self) -> bool:
        """Read one chunk into the buffer; False on EOF."""
        chunk = await self.reader.read(65536)
        if not chunk:
            return False
        self._buf.extend(chunk)
        return True

    async def read_until(self, sep: bytes, limit: int) -> "bytes | None":
        """Bytes up to and including ``sep``; None on EOF before any byte.

        Raises:
            HTTPError: 400 when EOF truncates a started message, 413 when
                ``limit`` is exceeded before ``sep`` appears.
        """
        while True:
            idx = self._buf.find(sep)
            if idx >= 0:
                out = bytes(self._buf[: idx + len(sep)])
                del self._buf[: idx + len(sep)]
                return out
            if len(self._buf) > limit:
                raise HTTPError(413, "request head too large")
            if not await self._fill():
                if not self._buf:
                    return None
                raise HTTPError(400, "connection closed mid-request")

    async def read_exactly(self, n: int) -> bytes:
        """Exactly ``n`` body bytes (400 on early EOF)."""
        while len(self._buf) < n:
            if not await self._fill():
                raise HTTPError(400, "connection closed mid-body")
        out = bytes(self._buf[:n])
        del self._buf[:n]
        return out

    async def poll_eof(self) -> bool:
        """Block until the peer sends data (False) or disconnects (True).

        Used as the disconnect monitor while a handler runs.  Cancelling
        this coroutine is always safe: a byte is either still unread in
        the stream or already pushed onto the buffer.  An abrupt reset
        (``ECONNRESET``) counts as a disconnect, not an error — the
        cancellation path must fire for RST-closing clients too.
        """
        if self._buf:
            return False
        try:
            return not await self._fill()
        except (ConnectionError, OSError):
            return True


@dataclass
class Request:
    """One parsed HTTP request.

    Attributes:
        method: upper-cased request method.
        path: decoded path component (no query string).
        query: query-string parameters (last value wins).
        headers: header map with lower-cased names.
        body: the raw request body (b"" when absent).
    """

    method: str
    path: str
    query: "dict[str, str]" = field(default_factory=dict)
    headers: "dict[str, str]" = field(default_factory=dict)
    body: bytes = b""

    def json(self):
        """The body parsed as JSON (400 on absent/undecodable bodies)."""
        import json

        if not self.body:
            raise HTTPError(400, "expected a JSON request body")
        try:
            return json.loads(self.body)
        except (ValueError, UnicodeDecodeError) as exc:
            raise HTTPError(400, f"invalid JSON body: {exc}") from None

    @property
    def wants_close(self) -> bool:
        """True when the client asked for ``Connection: close``."""
        return self.headers.get("connection", "").lower() == "close"


@dataclass
class Response:
    """One HTTP response ready for serialization.

    Attributes:
        status: HTTP status code.
        body: response payload bytes.
        content_type: ``Content-Type`` header value.
        headers: extra headers (``ETag``, ``Location``, ...).
        stream: when set, an *async iterator of bytes chunks* replaces
            ``body``: the connection handler writes the head without a
            ``Content-Length`` (``Connection: close`` — stream end is
            framed by EOF, the one framing a dependency-free HTTP/1.1
            stack can always produce) and then flushes chunks as the
            iterator yields them.  This is how SSE event streams ride the
            same stack as every JSON/PNG response.
    """

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: "dict[str, str]" = field(default_factory=dict)
    stream: "object | None" = field(default=None, repr=False)


async def read_request(
    buf: ConnectionBuffer, *, max_body: int = MAX_BODY_BYTES
) -> "Request | None":
    """Parse one request from the connection; None on clean EOF.

    Raises:
        HTTPError: malformed request line/headers (400), oversized head
            (413) or body (413).
    """
    head = await buf.read_until(_CRLF2, MAX_HEADER_BYTES)
    if head is None:
        return None
    try:
        lines = head.decode("latin-1").split("\r\n")
        method, target, version = lines[0].split(" ", 2)
    except ValueError:
        raise HTTPError(400, "malformed request line") from None
    if not version.startswith("HTTP/1."):
        raise HTTPError(400, f"unsupported protocol {version!r}")
    headers: "dict[str, str]" = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HTTPError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    parts = urlsplit(target)
    query = dict(parse_qsl(parts.query, keep_blank_values=True))
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise HTTPError(400, "malformed Content-Length") from None
        if length < 0:
            raise HTTPError(400, "malformed Content-Length")
        if length > max_body:
            raise HTTPError(413, f"request body over {max_body} bytes")
        body = await buf.read_exactly(length)
    elif headers.get("transfer-encoding"):
        raise HTTPError(400, "chunked request bodies are not supported")
    return Request(
        method=method.upper(),
        path=unquote(parts.path),
        query=query,
        headers=headers,
        body=body,
    )


async def write_response(
    writer: asyncio.StreamWriter,
    response: Response,
    *,
    keep_alive: bool = True,
    suppress_body: bool = False,
) -> None:
    """Serialize and flush one response (Content-Length framing only).

    ``suppress_body`` answers HEAD requests: the head (including the
    entity's ``Content-Length``) is sent, the body is not.
    """
    reason = STATUS_REASONS.get(response.status, "Unknown")
    head = [f"HTTP/1.1 {response.status} {reason}"]
    headers = dict(response.headers)
    if response.status != 304:
        headers.setdefault("Content-Type", response.content_type)
    headers.setdefault("Content-Length", str(len(response.body)))
    headers.setdefault("Connection", "keep-alive" if keep_alive else "close")
    for name, value in headers.items():
        head.append(f"{name}: {value}")
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
    if response.body and response.status != 304 and not suppress_body:
        writer.write(response.body)
    await writer.drain()


async def write_stream_head(
    writer: asyncio.StreamWriter, response: Response
) -> None:
    """Flush the head of a *streaming* response (no ``Content-Length``).

    The connection is marked ``Connection: close`` — the end of the
    stream is signalled by EOF, so the client never misparses a
    keep-alive boundary.  Chunks are written by the caller as the
    response's ``stream`` iterator yields them.
    """
    reason = STATUS_REASONS.get(response.status, "Unknown")
    head = [f"HTTP/1.1 {response.status} {reason}"]
    headers = dict(response.headers)
    headers.setdefault("Content-Type", response.content_type)
    headers.setdefault("Cache-Control", "no-cache")
    headers["Connection"] = "close"
    for name, value in headers.items():
        head.append(f"{name}: {value}")
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
    await writer.drain()


async def read_response(
    buf: ConnectionBuffer, *, max_body: int = MAX_BODY_BYTES
) -> "Response | None":
    """Parse one HTTP/1.1 *response* from a connection (the client side).

    The fleet proxy speaks to replicas over the same dependency-free
    stack it serves with; this is its read half.  Returns ``None`` on EOF
    before any byte.  A ``Content-Length`` body is consumed; a response
    *without* one (a streaming SSE relay, flagged ``Connection: close``)
    has its body left unread in ``buf`` for the caller to stream.

    Raises:
        HTTPError: 502-flavored 400s on malformed upstream data, 413 on
            an oversized head or body.
    """
    head = await buf.read_until(_CRLF2, MAX_HEADER_BYTES)
    if head is None:
        return None
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ", 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
        raise HTTPError(400, f"malformed response line {lines[0]!r}")
    try:
        status = int(parts[1])
    except ValueError:
        raise HTTPError(400, f"malformed response status {parts[1]!r}") from None
    headers: "dict[str, str]" = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HTTPError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise HTTPError(400, "malformed Content-Length") from None
        if not 0 <= length <= max_body:
            raise HTTPError(413, f"response body over {max_body} bytes")
        body = await buf.read_exactly(length)
    return Response(
        status=status,
        body=body,
        content_type=headers.get("content-type", "application/json"),
        headers=headers,
    )
