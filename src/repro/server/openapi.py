"""The OpenAPI contract for the HTTP edge — generated, never hand-edited.

The Python :data:`SPEC` dict is the single source of truth.  It is
rendered to ``docs/openapi.yaml`` by :func:`spec_yaml` (a small
deterministic YAML emitter — the repo takes no YAML dependency), served
live at ``GET /openapi.yaml``, and *kept in sync by tests*:

* ``tests/test_openapi.py`` regenerates the YAML and compares it to the
  committed ``docs/openapi.yaml`` byte-for-byte;
* the same test checks every route registered in the app's router appears
  in :data:`SPEC` (and vice versa), and validates live endpoint responses
  against the declared schemas via :func:`validate`.

Regenerate after editing :data:`SPEC`::

    PYTHONPATH=src python -m repro.server.openapi docs/openapi.yaml
"""

from __future__ import annotations

import json
import re

__all__ = ["SPEC", "spec_yaml", "validate"]

_POINTS = {"$ref": "#/components/schemas/Points"}
_ERROR_RESPONSE = {
    "description": "Error",
    "content": {
        "application/json": {
            "schema": {"$ref": "#/components/schemas/Error"}
        }
    },
}

#: Every data-plane endpoint honours an end-to-end request budget.
_XDEADLINE_PARAM = {
    "name": "X-Deadline",
    "in": "header",
    "required": False,
    "schema": {"type": "number"},
    "description": (
        "End-to-end budget in seconds (positive, finite). The request "
        "is abandoned with 504 the moment the budget runs out; a fleet "
        "proxy forwards the *remaining* budget to replicas it tries."
    ),
}
_SHED_RESPONSE = {
    "description": (
        "Shed by admission control (max in-flight reached); back off "
        "for Retry-After seconds and retry"
    ),
    "headers": {
        "Retry-After": {
            "schema": {"type": "integer"},
            "description": "Seconds to wait before retrying",
        }
    },
    "content": {
        "application/json": {
            "schema": {"$ref": "#/components/schemas/Error"}
        }
    },
}
_DEADLINE_RESPONSE = {
    "description": "The request's X-Deadline budget ran out mid-flight",
    "content": {
        "application/json": {
            "schema": {"$ref": "#/components/schemas/Error"}
        }
    },
}


def _json_response(description: str, schema_name: str, status_ok: str = "200"):
    return {
        status_ok: {
            "description": description,
            "content": {
                "application/json": {
                    "schema": {"$ref": f"#/components/schemas/{schema_name}"}
                }
            },
        }
    }


#: The OpenAPI 3.0 document (plain literals only — rendered to YAML).
SPEC = {
    "openapi": "3.0.3",
    "info": {
        "title": "rnnhm serving edge",
        "description": (
            "HTTP tile/query serving for reverse nearest neighbor heat maps "
            "(Sun et al., ICDE 2016). Slippy-map raster tiles with ETag "
            "revalidation, JSON batch queries, fingerprint-addressed builds "
            "and dynamic update batches over the asyncio coalescing core. "
            "Data-plane requests may carry an X-Deadline budget (504 when "
            "it runs out); overloaded servers shed load with 503 + "
            "Retry-After. See docs/resilience.md."
        ),
        "version": "1.0.0",
    },
    "paths": {
        "/healthz": {
            "get": {
                "summary": "Liveness probe and registry counts",
                "description": (
                    "Plain GET /healthz answers 200 whenever the process is "
                    "up (liveness). With ?ready=1 it becomes a readiness "
                    "probe: 503 status=starting until the service layer is "
                    "attached, 503 status=draining once graceful shutdown "
                    "began. A fleet proxy serves the same contract with "
                    "role=fleet-proxy."
                ),
                "operationId": "healthz",
                "parameters": [
                    {
                        "name": "ready",
                        "in": "query",
                        "required": False,
                        "schema": {"type": "string"},
                        "description": "any truthy value asks for readiness",
                    }
                ],
                "responses": {
                    **_json_response("Server is up", "Health"),
                    "503": {
                        "description": (
                            "ready=1 only: not (yet, or any more) serving"
                        ),
                        "content": {
                            "application/json": {
                                "schema": {"$ref": "#/components/schemas/Health"}
                            }
                        },
                    },
                },
            }
        },
        "/stats": {
            "get": {
                "summary": "Service, HTTP and latency counters",
                "operationId": "stats",
                "responses": _json_response("Observability snapshot", "Stats"),
            }
        },
        "/openapi.yaml": {
            "get": {
                "summary": "This document",
                "operationId": "openapi",
                "responses": {
                    "200": {
                        "description": "The OpenAPI contract as YAML",
                        "content": {"application/yaml": {}},
                    }
                },
            }
        },
        "/datasets": {
            "post": {
                "summary": "Register client/facility coordinate arrays",
                "description": (
                    "Dataset ids are content-addressed: re-posting identical "
                    "arrays returns the same id (201 first time, 200 after)."
                ),
                "operationId": "createDataset",
                "parameters": [_XDEADLINE_PARAM],
                "requestBody": {
                    "required": True,
                    "content": {
                        "application/json": {
                            "schema": {"$ref": "#/components/schemas/DatasetRequest"}
                        }
                    },
                },
                "responses": {
                    **_json_response("Dataset registered", "Dataset", "201"),
                    "400": _ERROR_RESPONSE,
                    "503": _SHED_RESPONSE,
                    "504": _DEADLINE_RESPONSE,
                },
            }
        },
        "/build": {
            "post": {
                "summary": "Kick (or recall) a heat-map build",
                "description": (
                    "Static builds are keyed by input fingerprint and "
                    "answered 202 + poll URL while sweeping, 200/ready once "
                    "resident. Concurrent identical requests coalesce onto "
                    "one sweep. dynamic=true attaches a DynamicHeatMap "
                    "(unique dyn-N handle) that accepts /update batches."
                ),
                "operationId": "build",
                "parameters": [_XDEADLINE_PARAM],
                "requestBody": {
                    "required": True,
                    "content": {
                        "application/json": {
                            "schema": {"$ref": "#/components/schemas/BuildRequest"}
                        }
                    },
                },
                "responses": {
                    "200": {
                        "description": "Already resident",
                        "content": {
                            "application/json": {
                                "schema": {"$ref": "#/components/schemas/BuildStatus"}
                            }
                        },
                    },
                    "202": {
                        "description": "Build started; poll the Location URL",
                        "content": {
                            "application/json": {
                                "schema": {"$ref": "#/components/schemas/BuildStatus"}
                            }
                        },
                    },
                    "400": _ERROR_RESPONSE,
                    "404": _ERROR_RESPONSE,
                    "503": _SHED_RESPONSE,
                    "504": _DEADLINE_RESPONSE,
                },
            }
        },
        "/build/{handle}": {
            "get": {
                "summary": "Poll a build kicked by POST /build",
                "operationId": "buildStatus",
                "parameters": [
                    {
                        "name": "handle",
                        "in": "path",
                        "required": True,
                        "schema": {"type": "string"},
                    },
                    _XDEADLINE_PARAM,
                ],
                "responses": {
                    "200": {
                        "description": "Terminal status (ready or failed)",
                        "content": {
                            "application/json": {
                                "schema": {"$ref": "#/components/schemas/BuildStatus"}
                            }
                        },
                    },
                    "202": {
                        "description": "Still building",
                        "content": {
                            "application/json": {
                                "schema": {"$ref": "#/components/schemas/BuildStatus"}
                            }
                        },
                    },
                    "404": _ERROR_RESPONSE,
                    "503": _SHED_RESPONSE,
                    "504": _DEADLINE_RESPONSE,
                },
            }
        },
        "/query/{handle}": {
            "post": {
                "summary": "Batch heat / RNN / top-k queries",
                "operationId": "query",
                "parameters": [
                    {
                        "name": "handle",
                        "in": "path",
                        "required": True,
                        "schema": {"type": "string"},
                    },
                    _XDEADLINE_PARAM,
                ],
                "requestBody": {
                    "required": True,
                    "content": {
                        "application/json": {
                            "schema": {"$ref": "#/components/schemas/QueryRequest"}
                        }
                    },
                },
                "responses": {
                    **_json_response("Query answers", "QueryResponse"),
                    "400": _ERROR_RESPONSE,
                    "404": _ERROR_RESPONSE,
                    "503": _SHED_RESPONSE,
                    "504": _DEADLINE_RESPONSE,
                },
            }
        },
        "/update/{handle}": {
            "post": {
                "summary": "Apply a dynamic update batch",
                "description": (
                    "Only handles built with dynamic=true accept updates "
                    "(409 for static handles). Rebuilds stay lazy: the next "
                    "query or tile fetch re-sweeps only the dirty bands and "
                    "drops only intersecting tiles."
                ),
                "operationId": "update",
                "parameters": [
                    {
                        "name": "handle",
                        "in": "path",
                        "required": True,
                        "schema": {"type": "string"},
                    },
                    _XDEADLINE_PARAM,
                ],
                "requestBody": {
                    "required": True,
                    "content": {
                        "application/json": {
                            "schema": {"$ref": "#/components/schemas/UpdateRequest"}
                        }
                    },
                },
                "responses": {
                    **_json_response("Updates applied", "UpdateResponse"),
                    "400": _ERROR_RESPONSE,
                    "404": _ERROR_RESPONSE,
                    "409": _ERROR_RESPONSE,
                    "503": _SHED_RESPONSE,
                    "504": _DEADLINE_RESPONSE,
                },
            }
        },
        "/tiles/{handle}/{z}/{tx}/{ty}.png": {
            "get": {
                "summary": "One raster heat tile as PNG",
                "description": (
                    "Slippy-map quadtree addressing from the lower-left "
                    "corner. The ETag carries a per-tile generation: a "
                    "partial invalidation bumps only the tiles it touched, "
                    "so clean tiles keep revalidating 304 across localized "
                    "updates. A cold tile with a warm coarser ancestor is "
                    "served progressively by default: an instant degraded "
                    "upsample marked X-Tile-Placeholder with a weak ETag, "
                    "while the real render proceeds in the background "
                    "(opt out with placeholder=0). Concurrent cold requests "
                    "for one tile coalesce onto a single render."
                ),
                "operationId": "tile",
                "parameters": [
                    {
                        "name": "handle",
                        "in": "path",
                        "required": True,
                        "schema": {"type": "string"},
                    },
                    {
                        "name": "z",
                        "in": "path",
                        "required": True,
                        "schema": {"type": "integer", "minimum": 0},
                    },
                    {
                        "name": "tx",
                        "in": "path",
                        "required": True,
                        "schema": {"type": "integer", "minimum": 0},
                    },
                    {
                        "name": "ty",
                        "in": "path",
                        "required": True,
                        "schema": {"type": "integer", "minimum": 0},
                    },
                    {
                        "name": "size",
                        "in": "query",
                        "required": False,
                        "schema": {"type": "integer", "minimum": 1, "maximum": 2048},
                    },
                    {
                        "name": "cmap",
                        "in": "query",
                        "required": False,
                        "schema": {"type": "string", "enum": ["heat", "gray_dark"]},
                    },
                    {
                        "name": "vmax",
                        "in": "query",
                        "required": False,
                        "schema": {"type": "number"},
                    },
                    {
                        "name": "placeholder",
                        "in": "query",
                        "required": False,
                        "description": (
                            "Set to 0 to disable progressive serving and "
                            "always wait for the full-resolution render."
                        ),
                        "schema": {
                            "type": "string",
                            "enum": ["0", "1", "false", "no", "true", "yes"],
                        },
                    },
                    _XDEADLINE_PARAM,
                ],
                "responses": {
                    "200": {
                        "description": "The rendered tile",
                        "headers": {
                            "ETag": {
                                "description": (
                                    "Strong per-tile validator; weak "
                                    "(W/-prefixed) for placeholder tiles."
                                ),
                                "schema": {"type": "string"},
                            },
                            "X-Tile-Placeholder": {
                                "description": (
                                    "Present on degraded placeholder tiles: "
                                    "the zoom level of the cached ancestor "
                                    "the stand-in was upsampled from."
                                ),
                                "schema": {"type": "string"},
                            },
                        },
                        "content": {"image/png": {}},
                    },
                    "304": {
                        "description": "Client's cached tile is current",
                        "headers": {
                            "ETag": {
                                "description": "The validator that matched.",
                                "schema": {"type": "string"},
                            },
                        },
                    },
                    "400": _ERROR_RESPONSE,
                    "404": _ERROR_RESPONSE,
                    "503": _SHED_RESPONSE,
                    "504": _DEADLINE_RESPONSE,
                },
            }
        },
        "/events/{handle}": {
            "get": {
                "summary": "Per-handle push-invalidation event stream (SSE)",
                "description": (
                    "A Server-Sent Events stream: one 'hello' event with the "
                    "handle's current version/generation, then one 'update' "
                    "event per applied POST /update batch — viewers drop "
                    "stale tiles on push instead of polling ETags. The "
                    "stream is Connection: close framed (no Content-Length) "
                    "and ends cleanly when the server drains. Behind a "
                    "fleet proxy, N viewers share one upstream replica "
                    "subscription per handle."
                ),
                "operationId": "events",
                "parameters": [
                    {
                        "name": "handle",
                        "in": "path",
                        "required": True,
                        "schema": {"type": "string"},
                    }
                ],
                "responses": {
                    "200": {
                        "description": (
                            "The event stream (id/event/data frames; data is "
                            "JSON)"
                        ),
                        "content": {"text/event-stream": {}},
                    },
                    "404": _ERROR_RESPONSE,
                },
            }
        },
        "/fleet/stats": {
            "get": {
                "summary": "Fleet-wide aggregated observability (proxy only)",
                "description": (
                    "Served by a --fleet-proxy coordinator: per-replica "
                    "/stats snapshots, their numeric service counters "
                    "summed (so fleet.builds is the number of actual sweeps "
                    "performed fleet-wide), the proxy's own routing "
                    "counters, and the consistent-hash ring layout. A "
                    "single-process server does not mount this path."
                ),
                "operationId": "fleetStats",
                "responses": _json_response(
                    "Aggregated fleet snapshot", "FleetStats"
                ),
            }
        },
    },
    "components": {
        "schemas": {
            "Points": {
                "type": "array",
                "minItems": 1,
                "items": {
                    "type": "array",
                    "items": {"type": "number"},
                    "minItems": 2,
                    "maxItems": 2,
                },
            },
            "Health": {
                "type": "object",
                "required": ["status"],
                "properties": {
                    "status": {
                        "type": "string",
                        "enum": ["ok", "starting", "draining"],
                    },
                    "handles": {"type": "integer"},
                    "datasets": {"type": "integer"},
                    "builds_in_progress": {"type": "integer"},
                    "role": {"type": "string", "enum": ["fleet-proxy"]},
                    "replicas": {"type": "integer"},
                },
            },
            "Stats": {
                "type": "object",
                "required": ["service", "http", "latency"],
                "properties": {
                    "service": {
                        "type": "object",
                        "description": (
                            "HeatMapService.stats_snapshot(): builds, cache "
                            "hit/miss/eviction, coalesced_builds/"
                            "coalesced_tiles, inflight_peak, ..."
                        ),
                    },
                    "http": {
                        "type": "object",
                        "description": (
                            "Edge counters: requests, response classes, "
                            "not_modified, cancelled_requests"
                        ),
                    },
                    "latency": {
                        "type": "object",
                        "description": "Per-endpoint latency percentile records",
                    },
                    "tiles": {
                        "type": "object",
                        "description": (
                            "Progressive-serving counters: png_purged, "
                            "placeholders_served, background_renders, "
                            "png_cache_entries, background_renders_inflight"
                        ),
                        "properties": {
                            "png_purged": {"type": "integer"},
                            "placeholders_served": {"type": "integer"},
                            "background_renders": {"type": "integer"},
                            "png_cache_entries": {"type": "integer"},
                            "background_renders_inflight": {"type": "integer"},
                        },
                    },
                },
            },
            "DatasetRequest": {
                "type": "object",
                "required": ["clients"],
                "properties": {
                    "clients": _POINTS,
                    "facilities": _POINTS,
                },
            },
            "Dataset": {
                "type": "object",
                "required": ["dataset", "n_clients", "n_facilities"],
                "properties": {
                    "dataset": {"type": "string"},
                    "n_clients": {"type": "integer"},
                    "n_facilities": {"type": "integer"},
                },
            },
            "BuildRequest": {
                "type": "object",
                "required": ["dataset"],
                "properties": {
                    "dataset": {"type": "string"},
                    "metric": {"type": "string", "enum": ["l1", "l2", "linf"]},
                    "algorithm": {"type": "string"},
                    "k": {"type": "integer", "minimum": 1},
                    "monochromatic": {"type": "boolean"},
                    "workers": {"type": "integer"},
                    "dynamic": {"type": "boolean"},
                    "rebuild": {
                        "type": "string",
                        "enum": ["auto", "incremental", "full"],
                    },
                    "recall": {
                        "type": "number",
                        "exclusiveMinimum": 0,
                        "maximum": 1,
                        "description": (
                            "approximate-engine recall knob (engines "
                            "without knobs reject it)"
                        ),
                    },
                    "seed": {
                        "type": "integer",
                        "description": (
                            "approximate-engine random seed — identical "
                            "(dataset, knobs, seed) builds are "
                            "byte-identical"
                        ),
                    },
                },
            },
            "BuildStatus": {
                "type": "object",
                "required": ["handle", "status"],
                "properties": {
                    "handle": {"type": "string"},
                    "status": {
                        "type": "string",
                        "enum": ["building", "ready", "failed", "evicted"],
                        "description": (
                            "evicted: the build finished but was since "
                            "LRU-evicted from the service — re-POST /build "
                            "(a store promotion or re-sweep, same handle)"
                        ),
                    },
                    "poll": {"type": "string"},
                    "error": {"type": "string"},
                },
            },
            "QueryRequest": {
                "type": "object",
                "properties": {
                    "kind": {
                        "type": "string",
                        "enum": ["heat", "rnn", "top-k"],
                    },
                    "points": _POINTS,
                    "k": {"type": "integer", "minimum": 1},
                },
            },
            "QueryResponse": {
                "type": "object",
                "required": ["handle", "kind"],
                "properties": {
                    "handle": {"type": "string"},
                    "kind": {"type": "string"},
                    "n": {"type": "integer"},
                    "heats": {"type": "array", "items": {"type": "number"}},
                    "rnn": {
                        "type": "array",
                        "items": {
                            "type": "array",
                            "items": {"type": "integer"},
                        },
                    },
                },
            },
            "UpdateOp": {
                "type": "object",
                "required": ["op"],
                "properties": {
                    "op": {
                        "type": "string",
                        "enum": [
                            "add_client", "move_client", "remove_client",
                            "add_facility", "move_facility", "remove_facility",
                        ],
                    },
                    "handle": {"type": "integer"},
                    "x": {"type": "number"},
                    "y": {"type": "number"},
                },
            },
            "UpdateRequest": {
                "type": "object",
                "required": ["updates"],
                "properties": {
                    "updates": {
                        "type": "array",
                        "minItems": 1,
                        "items": {"$ref": "#/components/schemas/UpdateOp"},
                    }
                },
            },
            "UpdateResponse": {
                "type": "object",
                "required": ["handle", "applied", "results", "version", "stale"],
                "properties": {
                    "handle": {"type": "string"},
                    "applied": {"type": "integer"},
                    "results": {
                        "type": "array",
                        "items": {"type": ["integer", "null"]},
                    },
                    "version": {"type": "integer"},
                    "stale": {"type": "boolean"},
                },
            },
            "FleetStats": {
                "type": "object",
                "required": ["fleet", "replicas", "proxy", "ring"],
                "properties": {
                    "fleet": {
                        "type": "object",
                        "description": (
                            "Numeric service counters summed across "
                            "reachable replicas (builds = actual sweeps "
                            "fleet-wide)"
                        ),
                    },
                    "replicas": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["replica", "reachable"],
                            "properties": {
                                "replica": {"type": "string"},
                                "reachable": {"type": "boolean"},
                                "stats": {"type": "object"},
                                "error": {"type": "string"},
                            },
                        },
                    },
                    "proxy": {
                        "type": "object",
                        "description": (
                            "The coordinator's own HTTP + routing counters "
                            "(routed, fanouts, failovers, replica_errors, "
                            "events_relayed, placeholder_tiles_relayed)"
                        ),
                    },
                    "ring": {
                        "type": "object",
                        "required": ["nodes", "vnodes"],
                        "properties": {
                            "nodes": {
                                "type": "array",
                                "items": {"type": "string"},
                            },
                            "vnodes": {"type": "integer"},
                            "sticky_handles": {"type": "integer"},
                        },
                    },
                },
            },
            "Error": {
                "type": "object",
                "required": ["error"],
                "properties": {
                    "error": {
                        "type": "object",
                        "required": ["status", "message"],
                        "properties": {
                            "status": {"type": "integer"},
                            "message": {"type": "string"},
                        },
                    }
                },
            },
        }
    },
}

# ----------------------------------------------------------------------
# YAML rendering (deterministic; the repo takes no YAML dependency)
# ----------------------------------------------------------------------
_BARE_KEY = re.compile(r"^[A-Za-z0-9_][A-Za-z0-9_.-]*$")

_HEADER = (
    "# Generated from repro.server.openapi.SPEC — do not edit by hand.\n"
    "# Regenerate: PYTHONPATH=src python -m repro.server.openapi docs/openapi.yaml\n"
)


def _scalar(value) -> str:
    """One YAML scalar; strings are JSON-quoted (valid YAML double-quote)."""
    if value is True:
        return "true"
    if value is False:
        return "false"
    if value is None:
        return "null"
    if isinstance(value, (int, float)):
        return json.dumps(value)
    return json.dumps(str(value))


def _key(name) -> str:
    name = str(name)
    # All-digit keys (status codes) must be quoted or YAML reads ints.
    if name.isdigit() or not _BARE_KEY.match(name):
        return json.dumps(name)
    return name


def _emit(value, indent: int, lines: "list[str]") -> None:
    pad = "  " * indent
    if isinstance(value, dict):
        if not value:
            lines[-1] += " {}"
            return
        for k, v in value.items():
            lines.append(f"{pad}{_key(k)}:")
            if isinstance(v, (dict, list)):
                _emit(v, indent + 1, lines)
            else:
                lines[-1] += f" {_scalar(v)}"
    elif isinstance(value, list):
        if not value:
            lines[-1] += " []"
            return
        for item in value:
            lines.append(f"{pad}-")
            if isinstance(item, (dict, list)):
                # Nest the structure under the dash marker.
                sub: "list[str]" = [lines[-1]]
                _emit(item, indent + 1, sub)
                if len(sub) > 1 and not sub[0].endswith((" {}", " []")):
                    # Fold the first child onto the dash line.
                    first = sub[1].strip()
                    sub[1] = f"{pad}- {first}"
                    del sub[0]
                lines[-1:] = sub
            else:
                lines[-1] += f" {_scalar(item)}"
    else:  # pragma: no cover - callers always pass containers
        lines.append(f"{pad}{_scalar(value)}")


def spec_yaml(spec: "dict | None" = None) -> str:
    """Render :data:`SPEC` (or another document) as deterministic YAML."""
    lines: "list[str]" = []
    _emit(spec if spec is not None else SPEC, 0, lines)
    return _HEADER + "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Schema validation (the JSON-Schema subset the spec uses)
# ----------------------------------------------------------------------
def _resolve(schema: dict, root: dict) -> dict:
    ref = schema.get("$ref")
    if ref is None:
        return schema
    node = root
    for part in ref.lstrip("#/").split("/"):
        node = node[part]
    return node


_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "null": type(None),
}


def _type_ok(instance, type_name: str) -> bool:
    if type_name == "number":
        return isinstance(instance, (int, float)) and not isinstance(instance, bool)
    if type_name == "integer":
        return isinstance(instance, int) and not isinstance(instance, bool)
    return isinstance(instance, _TYPES[type_name])


def validate(instance, schema: dict, *, root: "dict | None" = None,
             path: str = "$") -> "list[str]":
    """Check ``instance`` against the spec's JSON-Schema subset.

    Supports ``$ref`` into components, ``type`` (including type lists),
    ``properties``/``required``, ``items``/``minItems``/``maxItems``,
    ``enum``, ``minimum``/``maximum``.  Returns a list of human-readable
    violations — empty means valid.  This is what lets the test suite (and
    CI's docs job) validate live HTTP responses against
    ``docs/openapi.yaml`` without a jsonschema dependency.
    """
    root = root if root is not None else SPEC
    schema = _resolve(schema, root)
    errors: "list[str]" = []
    declared = schema.get("type")
    if declared is not None:
        types = declared if isinstance(declared, list) else [declared]
        if not any(_type_ok(instance, t) for t in types):
            return [f"{path}: expected {declared}, got {type(instance).__name__}"]
    if "enum" in schema and instance not in schema["enum"]:
        errors.append(f"{path}: {instance!r} not in enum {schema['enum']}")
    if isinstance(instance, dict):
        for name in schema.get("required", ()):
            if name not in instance:
                errors.append(f"{path}: missing required property {name!r}")
        for name, sub in schema.get("properties", {}).items():
            if name in instance:
                errors.extend(
                    validate(instance[name], sub, root=root, path=f"{path}.{name}")
                )
    if isinstance(instance, list):
        if "minItems" in schema and len(instance) < schema["minItems"]:
            errors.append(f"{path}: fewer than {schema['minItems']} items")
        if "maxItems" in schema and len(instance) > schema["maxItems"]:
            errors.append(f"{path}: more than {schema['maxItems']} items")
        items = schema.get("items")
        if items:
            for i, element in enumerate(instance):
                errors.extend(
                    validate(element, items, root=root, path=f"{path}[{i}]")
                )
    if isinstance(instance, (int, float)) and not isinstance(instance, bool):
        if "minimum" in schema and instance < schema["minimum"]:
            errors.append(f"{path}: {instance} below minimum {schema['minimum']}")
        if "maximum" in schema and instance > schema["maximum"]:
            errors.append(f"{path}: {instance} above maximum {schema['maximum']}")
    return errors


def main(argv: "list[str] | None" = None) -> int:
    """Write the rendered YAML to the given path (or stdout)."""
    import sys

    args = sys.argv[1:] if argv is None else argv
    text = spec_yaml()
    if args:
        with open(args[0], "w", encoding="utf-8") as fh:
            fh.write(text)
        sys.stderr.write(f"wrote {args[0]} ({len(text.splitlines())} lines)\n")
    else:
        sys.stdout.write(text)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
