"""Wire-format codecs: JSON in/out, PNG tiles, ETags.

Everything that crosses the HTTP boundary is converted here so the
handlers stay pure orchestration: numpy-aware JSON encoding, strict
decoding of client-supplied coordinate arrays and update batches (every
malformed input becomes a 400, never a 500), deterministic PNG rendering
of heat-grid tiles through the repo's own colormaps and PNG encoder, and
the generation-based ``ETag`` scheme that lets a map client revalidate a
tile for free (``304 Not Modified``) until an update actually invalidates
it.
"""

from __future__ import annotations

import json
import math

import numpy as np

from ..render.colormap import apply_colormap
from ..render.png import encode_png
from .errors import HTTPError
from .http import Response

__all__ = [
    "json_response",
    "decode_points",
    "decode_dataset",
    "decode_updates",
    "tile_etag",
    "render_tile_png",
    "TILE_CMAPS",
]

#: Colormaps the tile endpoint serves (?cmap=...).
TILE_CMAPS = ("heat", "gray_dark")

_UPDATE_OPS = {
    "add_client": ("x", "y"),
    "move_client": ("handle", "x", "y"),
    "remove_client": ("handle",),
    "add_facility": ("x", "y"),
    "move_facility": ("handle", "x", "y"),
    "remove_facility": ("handle",),
}


def _default(obj):
    """JSON fallback for the numpy scalars/arrays service answers carry."""
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, (frozenset, set)):
        return sorted(obj)
    raise TypeError(f"{type(obj).__name__} is not JSON serializable")


def json_response(
    payload, status: int = 200, *, headers: "dict[str, str] | None" = None
) -> Response:
    """A JSON :class:`Response` (numpy-aware, compact separators)."""
    body = json.dumps(payload, default=_default, separators=(",", ":")).encode()
    return Response(
        status=status,
        body=body,
        content_type="application/json",
        headers=dict(headers) if headers else {},
    )


def decode_points(payload, *, max_points: int) -> np.ndarray:
    """A client-supplied ``points`` list -> a validated (n, 2) float array.

    Raises:
        HTTPError: 400 on missing/ragged/non-finite input, 413 when the
            batch exceeds ``max_points``.
    """
    if not isinstance(payload, dict) or "points" not in payload:
        raise HTTPError(400, 'expected {"points": [[x, y], ...]}')
    points = payload["points"]
    if not isinstance(points, list) or not points:
        raise HTTPError(400, '"points" must be a non-empty list of [x, y] pairs')
    if len(points) > max_points:
        raise HTTPError(413, f'"points" batch over the {max_points}-point limit')
    try:
        arr = np.asarray(points, dtype=float)
    except (TypeError, ValueError):
        raise HTTPError(400, '"points" must be numeric [x, y] pairs') from None
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise HTTPError(400, f'"points" must be (n, 2), got shape {arr.shape}')
    if not np.isfinite(arr).all():
        raise HTTPError(400, '"points" must be finite (no NaN/inf)')
    return arr


#: Hard cap on dataset point dimension (the approximate engines accept
#: arbitrary d; the cap only bounds request size, like ``max_points``).
MAX_DATASET_DIMS = 64


def _coordinate_array(payload: dict, key: str, *, required: bool) -> "np.ndarray | None":
    value = payload.get(key)
    if value is None:
        if required:
            raise HTTPError(400, f'dataset body must carry "{key}": [[x, y], ...]')
        return None
    try:
        arr = np.asarray(value, dtype=float)
    except (TypeError, ValueError):
        raise HTTPError(400, f'"{key}" must be numeric [x, y] pairs') from None
    # d > 2 is legal: approximate engines serve arbitrary-dimension data
    # (exact sweeps reject it at build time with a capability error).
    if arr.ndim != 2 or not 2 <= arr.shape[1] <= MAX_DATASET_DIMS or not len(arr):
        raise HTTPError(
            400,
            f'"{key}" must be a non-empty (n, d) array with '
            f"2 <= d <= {MAX_DATASET_DIMS}",
        )
    if not np.isfinite(arr).all():
        raise HTTPError(400, f'"{key}" must be finite (no NaN/inf)')
    return arr


def decode_dataset(payload) -> "tuple[np.ndarray, np.ndarray | None]":
    """A ``POST /datasets`` body -> validated (clients, facilities) arrays.

    ``facilities`` may be omitted for monochromatic builds (O == F).
    """
    if not isinstance(payload, dict):
        raise HTTPError(400, "dataset body must be a JSON object")
    clients = _coordinate_array(payload, "clients", required=True)
    facilities = _coordinate_array(payload, "facilities", required=False)
    return clients, facilities


def decode_updates(payload) -> "list[tuple[str, dict]]":
    """A ``POST /update/{handle}`` body -> validated (op, kwargs) list.

    Every operation names a ``DynamicHeatMap`` update method and carries
    exactly the fields that method needs (``handle``, ``x``, ``y``).
    """
    if not isinstance(payload, dict) or "updates" not in payload:
        raise HTTPError(400, 'expected {"updates": [{"op": ..., ...}, ...]}')
    updates = payload["updates"]
    if not isinstance(updates, list) or not updates:
        raise HTTPError(400, '"updates" must be a non-empty list of operations')
    out: "list[tuple[str, dict]]" = []
    for i, item in enumerate(updates):
        if not isinstance(item, dict) or "op" not in item:
            raise HTTPError(400, f'update #{i} must be an object with an "op"')
        op = item["op"]
        if op not in _UPDATE_OPS:
            raise HTTPError(
                400,
                f"update #{i}: unknown op {op!r} "
                f"(expected one of {sorted(_UPDATE_OPS)})",
            )
        kwargs: "dict[str, float | int]" = {}
        for name in _UPDATE_OPS[op]:
            if name not in item:
                raise HTTPError(400, f"update #{i} ({op}) is missing {name!r}")
            try:
                kwargs[name] = (
                    int(item[name]) if name == "handle" else float(item[name])
                )
            except (TypeError, ValueError):
                raise HTTPError(
                    400, f"update #{i} ({op}): {name!r} must be numeric"
                ) from None
            if name != "handle" and not math.isfinite(kwargs[name]):
                # A NaN coordinate would be *accepted* here but wedge the
                # map on the next (deferred) rebuild — reject up front.
                raise HTTPError(
                    400, f"update #{i} ({op}): {name!r} must be finite"
                )
        out.append((op, kwargs))
    return out


def tile_etag(
    handle: str, z: int, tx: int, ty: int, size: int, cmap: str,
    vmax: "float | None", generation: int,
) -> str:
    """The strong ETag for a tile at one generation of that tile.

    Strong ETags name byte-identical representations, so every input
    that changes the rendered pixels participates — including ``vmax``
    (``a`` = auto-normalized).  ``generation`` is the *per-tile*
    generation (:meth:`HeatMapService.tile_generation`): a partial
    invalidation raises it only for tiles intersecting the update's
    dirty rects, so revalidation is precise — ``If-None-Match`` hits
    (304) until an update actually touches this tile's pixels, and
    misses the moment one does.
    """
    vtag = "a" if vmax is None else repr(float(vmax))
    return f'"{handle[:16]}.{z}.{tx}.{ty}.{size}.{cmap}.v{vtag}.g{generation}"'


def placeholder_tile_etag(etag: str, source_z: int) -> str:
    """The weak ETag for a placeholder (degraded) tile representation.

    Derived from the real tile's strong ETag plus the source zoom the
    placeholder was upsampled from.  Weak (``W/`` prefix) because the
    bytes are *not* the tile's canonical representation: caches may
    reuse it, but a conditional fetch carrying it revalidates into the
    real tile (200 with the strong ETag) as soon as the background
    render lands — or 304 only while the tile is still cold.
    """
    return f'W/{etag[:-1]}.ph{int(source_z)}"'


def render_tile_png(grid: np.ndarray, cmap: str, vmax: "float | None") -> bytes:
    """A heat grid -> deterministic PNG bytes under a named colormap.

    Grids arrive bottom-up (raster row 0 = bottom) and are flipped to the
    top-down image convention before encoding.
    """
    if cmap not in TILE_CMAPS:
        raise HTTPError(
            400, f"unknown cmap {cmap!r} (expected one of {sorted(TILE_CMAPS)})"
        )
    image = apply_colormap(grid, cmap, vmax=vmax)
    return encode_png(image[::-1])
