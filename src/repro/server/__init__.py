"""HTTP tile/query serving edge over the asyncio coalescing core.

The paper positions RNN heat maps as an *interactive influence-exploration
tool*; this package is the layer that makes the whole stack externally
reachable — a dependency-free asyncio HTTP server (stdlib streams, no
web framework) mounting
:class:`~repro.service.async_service.AsyncHeatMapService` behind a
slippy-map-style REST surface:

* :mod:`~repro.server.app` — the application: routes, handlers, dataset/
  build/dynamic registries, connection handling with **client-disconnect
  cancellation** propagating into in-flight request tasks.
* :mod:`~repro.server.http` — minimal HTTP/1.1 parsing/serialization over
  asyncio streams (keep-alive, Content-Length bodies, pushback buffer).
* :mod:`~repro.server.router` — placeholder-pattern routing
  (``/tiles/{handle}/{z:int}/{tx:int}/{ty:int}.png``), introspectable for
  the OpenAPI sync test.
* :mod:`~repro.server.wire` — wire-format codecs: numpy-aware JSON,
  strict request decoding, PNG tile rendering, generation-based ETags.
* :mod:`~repro.server.errors` — the HTTP error taxonomy and the
  domain-exception -> status mapping.
* :mod:`~repro.server.openapi` — the generated API contract
  (``docs/openapi.yaml``) and a schema validator tests run against live
  responses.

Start from the CLI (``python -m repro serve-http --port 8080``) or
in-process via :class:`~repro.server.app.ThreadedHTTPServer`.
"""

from .app import (
    BaseHTTPApp,
    HeatMapHTTPApp,
    HeatMapHTTPServer,
    HTTPStats,
    ThreadedHTTPServer,
    serve,
)
from .errors import HTTPError
from .http import Request, Response
from .router import Route, Router

__all__ = [
    "BaseHTTPApp",
    "HTTPError",
    "HTTPStats",
    "HeatMapHTTPApp",
    "HeatMapHTTPServer",
    "Request",
    "Response",
    "Route",
    "Router",
    "ThreadedHTTPServer",
    "serve",
]
