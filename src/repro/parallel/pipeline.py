"""The slab-partitioned build pipeline: partition, sweep, stitch.

``build_parallel`` has the same contract as ``run_crest`` /
``run_crest_l2``: ``(circles, measure, ...) -> (SweepStats, RegionSet)``.
It cuts the event queue into x-slabs (:mod:`.slabs`), sweeps each slab with
a serial engine in a ``ProcessPoolExecutor`` worker (:mod:`.worker`), and
stitches the clipped per-slab fragments into one ``RegionSet``.  Worker
results travel as flat numpy columns in shared memory (:mod:`.shm`) rather
than pickled fragment graphs; ``stats.transport_s`` records what that
movement cost.

Correctness: slab boundaries never coincide with event abscissae, so a
boundary only ever splits a region of constant RNN set; the stitch re-merges
the two halves when their geometry, heat and RNN set agree, and query
answers (``heat_at``/``heat_at_many``/``rnn_at_many``/``top_k_heats``) are
identical to the serial build for any deterministic measure.  (Heats are
bit-identical because each region's measure is evaluated on the *same*
frozenset in whichever process labels it; measures that are sensitive to
set iteration order — e.g. float summation in ``WeightedMeasure`` — are
deterministic per set contents only up to that order.)

Deterministic fallbacks run the identical slab tasks in-process, in slab
order, and are taken for ``workers=1``, single-slab plans, unpicklable
measures, ``on_label`` callbacks (callables do not cross processes), and
any process-pool failure — the pipeline never errors where the serial
engine would have succeeded.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import FIRST_COMPLETED
from concurrent.futures import wait as futures_wait

from ..core.regionset import RegionSet
from ..core.stitching import stitch_fragments
from ..core.sweep_linf import SweepStats, _check_cancel
from ..errors import BuildCancelledError
from ..geometry.transforms import IDENTITY, Transform
from .pool import discard_pool, lease_pool
from .shm import claim_columns, columns_to_fragments, discard_block
from .slabs import plan_slabs
from .worker import SlabResult, make_task, sweep_slab, sweep_slab_columns

__all__ = ["build_parallel", "resolve_workers", "stitch_fragments"]

#: Below this many circles per slab, extra slabs cost more in overlap and
#: process startup than they recover in parallelism.
MIN_CIRCLES_PER_SLAB = 8


def resolve_workers(workers: "int | None") -> int:
    """Normalize a worker-count request: ``None`` means one per CPU."""
    if workers is None:
        return max(1, os.cpu_count() or 1)
    return max(1, int(workers))


def _aggregate_stats(
    results: "list[SlabResult]",
    *,
    n_circles: int,
    algorithm: str,
    n_workers: int,
) -> SweepStats:
    """Combine per-slab counters; maxima come from the owned fragments."""
    agg = SweepStats(n_circles=n_circles, algorithm=algorithm)
    agg.n_slabs = len(results)
    agg.n_workers = n_workers
    for r in results:
        s = r.stats
        agg.n_events += s.n_events
        agg.n_event_batches += s.n_event_batches
        agg.labels += s.labels
        agg.measure_calls += s.measure_calls
        agg.changed_intervals += s.changed_intervals
        agg.merged_intervals += s.merged_intervals
        if r.max_rnn_size > agg.max_rnn_size:
            agg.max_rnn_size = r.max_rnn_size
        if r.max_heat > agg.max_heat:
            agg.max_heat = r.max_heat
            agg.max_heat_rnn = r.max_heat_rnn
            agg.max_heat_point = r.max_heat_point
    return agg


def _picklable(obj) -> bool:
    try:
        pickle.dumps(obj, protocol=4)
        return True
    except Exception:
        return False


def _run_pool(executor, tasks, should_cancel):
    """Run slab tasks on an executor; poll ``should_cancel`` while waiting.

    Cancellation is slab-grained on this path (callables do not cross
    process boundaries): queued slabs are cancelled outright, in-flight
    slabs are allowed to finish so their shared-memory blocks can be
    unlinked, and the build raises ``BuildCancelledError``.  Any abandoned
    path — cancellation or a worker failure — drains every completed
    result's block so no segment outlives the build.
    """
    futures = [executor.submit(sweep_slab_columns, t) for t in tasks]
    try:
        pending = set(futures)
        while pending:
            done, pending = futures_wait(
                pending,
                timeout=0.05 if should_cancel is not None else None,
                return_when=FIRST_COMPLETED,
            )
            _check_cancel(should_cancel)
        return [f.result() for f in futures]
    except BaseException:
        for f in futures:
            f.cancel()
        for f in futures:
            if f.cancelled():
                continue
            try:
                discard_block(f.result().block)
            except Exception:
                pass
        raise


def _claim_results(col_results) -> "tuple[list[SlabResult], float]":
    """Rebuild :class:`SlabResult` objects from shipped columns.

    Returns the per-slab results plus the total transport seconds (worker
    packing + parent claim/rebuild).
    """
    transport = sum(r.pack_s for r in col_results)
    t0 = time.perf_counter()
    results = []
    try:
        for r in col_results:
            fragments = []
            if r.block is not None:
                kind, cols = claim_columns(r.block)
                fragments = columns_to_fragments(kind, cols)
            results.append(
                SlabResult(
                    r.stats, fragments,
                    r.max_heat, r.max_heat_rnn, r.max_heat_point, r.max_rnn_size,
                )
            )
    except BaseException:
        # Unlink whatever was not claimed (already-claimed segments are
        # gone and discard is a no-op for them).
        for r in col_results:
            discard_block(r.block)
        raise
    return results, transport + (time.perf_counter() - t0)


def build_parallel(
    circles,
    measure,
    *,
    transform: Transform = IDENTITY,
    collect_fragments: bool = True,
    workers: "int | None" = None,
    status_backend: str = "sortedlist",
    on_label=None,
    should_cancel=None,
) -> "tuple[SweepStats, RegionSet | None]":
    """Build a heat map by sweeping x-slabs in parallel worker processes.

    Args:
        circles: NN-circles (squares or disks; the engine is chosen by the
            circle shape, mirroring the serial 'crest' dispatch).
        measure: influence measure; must be picklable for multi-process
            execution, otherwise the in-process fallback runs.
        transform: recorded on the stitched RegionSet (pi/4 rotation for L1).
        collect_fragments: when False only stats are returned (fragments are
            still assembled per slab — the owned maxima derive from them —
            but no RegionSet is stitched).
        workers: process count; ``None`` means one per CPU, ``1`` forces the
            deterministic in-process path (a single unclipped slab,
            identical to the serial sweep output).
        status_backend: line-status structure for the L-infinity engine.
        on_label: per-labeling callback; forces in-process execution and may
            fire more than once per region (margin overlap re-labels).
        should_cancel: zero-argument cancellation hook.  In-process slabs
            poll it once per event batch; the multi-process path polls it
            while waiting on workers (slab granularity), cancels queued
            slabs and unlinks every finished slab's shared-memory block
            before raising ``BuildCancelledError``.

    Returns:
        (stats, region_set) — ``region_set`` is None when not collecting.
        ``stats`` sums the per-slab work counters (overlap margins are swept
        once per adjacent slab, so e.g. ``labels`` can exceed the serial
        count) and records ``n_slabs`` / ``n_workers`` / ``transport_s``.
    """
    n_workers = resolve_workers(workers)
    sweep = "l2" if circles.metric.circle_shape == "disk" else "linf"
    algorithm = f"{sweep}-parallel"  # matches the registry engine names

    default_heat = float(measure(frozenset()))
    if len(circles) == 0:
        stats = SweepStats(n_circles=0, algorithm=algorithm)
        stats.n_workers = n_workers
        region_set = (
            RegionSet([], transform, default_heat, circles.metric.name)
            if collect_fragments else None
        )
        return stats, region_set

    n_slabs = min(n_workers, max(1, len(circles) // MIN_CIRCLES_PER_SLAB))
    slabs = plan_slabs(circles, n_slabs)
    tasks = [
        make_task(
            circles, s.members, measure,
            sweep=sweep, own_lo=s.own_lo, own_hi=s.own_hi,
            status_backend=status_backend,
            ship_fragments=collect_fragments,
        )
        for s in slabs
    ]

    use_pool = (
        n_workers > 1
        and len(tasks) > 1
        and on_label is None
        and _picklable(tasks[0].measure)
    )
    results: "list[SlabResult] | None" = None
    transport_s = 0.0
    if use_pool:
        # Worker processes are reused across builds: the shared pool is
        # created on first use and leased to every build requesting the
        # same worker count; a different count gets a private pool for
        # just this build (resizing under other callers is unsafe).
        shared = None
        try:
            shared = lease_pool(n_workers)
        except Exception:
            shared = None
        if shared is not None:
            try:
                col_results = _run_pool(shared, tasks, should_cancel)
                results, transport_s = _claim_results(col_results)
            except BuildCancelledError:
                raise
            except Exception:
                # The *shared* executor failed: its state is suspect, so
                # drop it for everyone and fall through in-process.  A
                # private pool's failure below never touches it.
                discard_pool()
                results = None
        else:
            try:
                from concurrent.futures import ProcessPoolExecutor

                with ProcessPoolExecutor(
                    max_workers=min(n_workers, len(tasks))
                ) as ex:
                    col_results = _run_pool(ex, tasks, should_cancel)
                results, transport_s = _claim_results(col_results)
            except BuildCancelledError:
                raise
            except Exception:
                results = None  # private pool broken: fall through
    if results is None:
        results = [
            sweep_slab(t, on_label=on_label, should_cancel=should_cancel)
            for t in tasks
        ]

    stats = _aggregate_stats(
        results,
        n_circles=len(circles),
        algorithm=algorithm,
        n_workers=n_workers,
    )
    stats.transport_s = transport_s
    region_set = None
    if collect_fragments:
        fragments = stitch_fragments([r.fragments for r in results])
        stats.n_fragments = len(fragments)
        region_set = RegionSet(
            fragments, transform, default_heat, circles.metric.name
        )
    return stats, region_set
