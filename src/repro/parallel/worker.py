"""The per-slab unit of work, picklable and importable by worker processes.

``sweep_slab`` is a pure function of its :class:`SlabTask`: it rebuilds the
slab's circle subset, runs the serial sweep engine over it, and clips the
resulting fragments to the slab's ownership interval.  Running a serial
engine per slab is what makes the pipeline's answers match the serial build
— the only parallel-specific code is partitioning and clipping, both of
which operate on regions of constant RNN set.  Under L2 the slab engine is
the vectorized ``run_crest_l2_batched``, which is bit-identical to the loop
sweep (see :mod:`repro.core.sweep_batched`) and substantially faster.

``sweep_slab_columns`` wraps ``sweep_slab`` for cross-process execution: it
flattens the clipped fragments into numpy columns and parks them in shared
memory (:mod:`.shm`), so the result that travels back through the pickle
channel is a handful of scalars plus a segment name instead of an
O(fragments) object graph.

Clipped fragments are correct even though the slab sweep saw only a subset
of the circles: any fragment intersecting the open ownership interval has a
constant RNN set across its x-run, so every circle in that set contains a
point inside the interval and is therefore a member of the slab (see
:mod:`.slabs`).  Fragments fully outside the interval — labeled from the
subset's possibly-incomplete arrangement in the margins — are dropped.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..core.stitching import clip_fragments, fragment_maxima
from ..core.sweep_batched import run_crest_l2_batched
from ..core.sweep_linf import SweepStats, run_crest
from ..geometry.circle import NNCircleSet
from .shm import ColumnBlock, fragments_to_columns, publish_columns

__all__ = [
    "SlabTask",
    "SlabResult",
    "SlabColumnsResult",
    "clip_fragments",
    "sweep_slab",
    "sweep_slab_columns",
]


@dataclass(frozen=True)
class SlabTask:
    """Everything one slab sweep needs, in picklable form.

    The metric travels by name and the circle subset as plain arrays so the
    payload crosses process boundaries cheaply; the measure must itself be
    picklable for multi-process execution (the pipeline probes this and
    falls back to in-process execution when it is not).
    """

    sweep: str  # 'linf' or 'l2' — which serial engine to run
    metric_name: str
    cx: np.ndarray
    cy: np.ndarray
    radius: np.ndarray
    client_ids: np.ndarray
    measure: object
    own_lo: float
    own_hi: float
    status_backend: str = "sortedlist"
    #: ``sweep_slab_columns`` only publishes fragment columns when this is
    #: set — a stats-only build (``collect_fragments=False``) still clips
    #: fragments for the owned maxima but ships none of them.
    ship_fragments: bool = True


@dataclass
class SlabResult:
    """One slab's output: clipped fragments plus the slab's work counters.

    ``max_heat``/``max_heat_rnn``/``max_heat_point``/``max_rnn_size`` are
    recomputed from the *clipped* fragments rather than taken from the raw
    sweep stats: the raw maxima may come from a margin region the subset
    arrangement labels differently than the full one.
    """

    stats: SweepStats
    fragments: list
    max_heat: float
    max_heat_rnn: frozenset
    max_heat_point: "tuple[float, float] | None"
    max_rnn_size: int


def sweep_slab(task: SlabTask, on_label=None, should_cancel=None) -> SlabResult:
    """Run the serial sweep over one slab's circle subset and clip.

    ``on_label`` and ``should_cancel`` are only usable in-process (callables
    do not travel with the task); ``on_label`` fires once per slab labeling
    operation, which may revisit regions that extend into neighboring slabs'
    margins, and ``should_cancel`` is polled by the slab engine once per
    event batch.
    """
    circles = NNCircleSet(
        task.cx, task.cy, task.radius, task.metric_name,
        client_ids=task.client_ids, drop_degenerate=False,
    )
    if task.sweep == "l2":
        stats, region_set = run_crest_l2_batched(
            circles, task.measure, collect_fragments=True, on_label=on_label,
            should_cancel=should_cancel,
        )
    else:
        stats, region_set = run_crest(
            circles, task.measure, status_backend=task.status_backend,
            collect_fragments=True, on_label=on_label,
            should_cancel=should_cancel,
        )
    fragments = clip_fragments(region_set.fragments, task.own_lo, task.own_hi)
    max_heat, max_rnn, max_point, max_rnn_size = fragment_maxima(fragments)
    return SlabResult(stats, fragments, max_heat, max_rnn, max_point, max_rnn_size)


@dataclass
class SlabColumnsResult:
    """One slab's output with fragments parked in shared memory.

    ``block`` is ``None`` when the task asked for no fragment shipping;
    ``pack_s`` is the worker-side seconds spent flattening and publishing
    (the parent adds its claim/rebuild time for the full transport cost).
    """

    stats: SweepStats
    block: "ColumnBlock | None"
    pack_s: float
    max_heat: float
    max_heat_rnn: frozenset
    max_heat_point: "tuple[float, float] | None"
    max_rnn_size: int


def sweep_slab_columns(task: SlabTask) -> SlabColumnsResult:
    """``sweep_slab`` for worker processes: ship columns, not objects."""
    res = sweep_slab(task)
    block = None
    t0 = time.perf_counter()
    if task.ship_fragments:
        kind, cols = fragments_to_columns(res.fragments)
        block = publish_columns(kind, cols)
    pack_s = time.perf_counter() - t0
    return SlabColumnsResult(
        res.stats, block, pack_s,
        res.max_heat, res.max_heat_rnn, res.max_heat_point, res.max_rnn_size,
    )


def make_task(
    circles: NNCircleSet,
    members: np.ndarray,
    measure,
    *,
    sweep: str,
    own_lo: float,
    own_hi: float,
    status_backend: str = "sortedlist",
    ship_fragments: bool = True,
) -> SlabTask:
    """A :class:`SlabTask` for one slab of a parent circle set."""
    return SlabTask(
        sweep=sweep,
        metric_name=circles.metric.name,
        cx=np.ascontiguousarray(circles.cx[members]),
        cy=np.ascontiguousarray(circles.cy[members]),
        radius=np.ascontiguousarray(circles.radius[members]),
        client_ids=np.ascontiguousarray(circles.client_ids[members]),
        measure=measure,
        own_lo=own_lo,
        own_hi=own_hi,
        status_backend=status_backend,
        ship_fragments=ship_fragments,
    )
