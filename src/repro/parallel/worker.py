"""The per-slab unit of work, picklable and importable by worker processes.

``sweep_slab`` is a pure function of its :class:`SlabTask`: it rebuilds the
slab's circle subset, runs the *serial* sweep engine over it, and clips the
resulting fragments to the slab's ownership interval.  Running the unmodified
serial engine per slab is what makes the pipeline's answers match the serial
build — the only parallel-specific code is partitioning and clipping, both
of which operate on regions of constant RNN set.

Clipped fragments are correct even though the slab sweep saw only a subset
of the circles: any fragment intersecting the open ownership interval has a
constant RNN set across its x-run, so every circle in that set contains a
point inside the interval and is therefore a member of the slab (see
:mod:`.slabs`).  Fragments fully outside the interval — labeled from the
subset's possibly-incomplete arrangement in the margins — are dropped.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.stitching import clip_fragments, fragment_maxima
from ..core.sweep_l2 import run_crest_l2
from ..core.sweep_linf import SweepStats, run_crest
from ..geometry.circle import NNCircleSet

__all__ = ["SlabTask", "SlabResult", "clip_fragments", "sweep_slab"]


@dataclass(frozen=True)
class SlabTask:
    """Everything one slab sweep needs, in picklable form.

    The metric travels by name and the circle subset as plain arrays so the
    payload crosses process boundaries cheaply; the measure must itself be
    picklable for multi-process execution (the pipeline probes this and
    falls back to in-process execution when it is not).
    """

    sweep: str  # 'linf' or 'l2' — which serial engine to run
    metric_name: str
    cx: np.ndarray
    cy: np.ndarray
    radius: np.ndarray
    client_ids: np.ndarray
    measure: object
    own_lo: float
    own_hi: float
    status_backend: str = "sortedlist"


@dataclass
class SlabResult:
    """One slab's output: clipped fragments plus the slab's work counters.

    ``max_heat``/``max_heat_rnn``/``max_heat_point``/``max_rnn_size`` are
    recomputed from the *clipped* fragments rather than taken from the raw
    sweep stats: the raw maxima may come from a margin region the subset
    arrangement labels differently than the full one.
    """

    stats: SweepStats
    fragments: list
    max_heat: float
    max_heat_rnn: frozenset
    max_heat_point: "tuple[float, float] | None"
    max_rnn_size: int


def sweep_slab(task: SlabTask, on_label=None) -> SlabResult:
    """Run the serial sweep over one slab's circle subset and clip.

    ``on_label`` is only usable in-process (callables do not travel with the
    task); when set, it fires once per slab labeling operation, which may
    revisit regions that extend into neighboring slabs' margins.
    """
    circles = NNCircleSet(
        task.cx, task.cy, task.radius, task.metric_name,
        client_ids=task.client_ids, drop_degenerate=False,
    )
    if task.sweep == "l2":
        stats, region_set = run_crest_l2(
            circles, task.measure, collect_fragments=True, on_label=on_label,
        )
    else:
        stats, region_set = run_crest(
            circles, task.measure, status_backend=task.status_backend,
            collect_fragments=True, on_label=on_label,
        )
    fragments = clip_fragments(region_set.fragments, task.own_lo, task.own_hi)
    max_heat, max_rnn, max_point, max_rnn_size = fragment_maxima(fragments)
    return SlabResult(stats, fragments, max_heat, max_rnn, max_point, max_rnn_size)


def make_task(
    circles: NNCircleSet,
    members: np.ndarray,
    measure,
    *,
    sweep: str,
    own_lo: float,
    own_hi: float,
    status_backend: str = "sortedlist",
) -> SlabTask:
    """A :class:`SlabTask` for one slab of a parent circle set."""
    return SlabTask(
        sweep=sweep,
        metric_name=circles.metric.name,
        cx=np.ascontiguousarray(circles.cx[members]),
        cy=np.ascontiguousarray(circles.cy[members]),
        radius=np.ascontiguousarray(circles.radius[members]),
        client_ids=np.ascontiguousarray(circles.client_ids[members]),
        measure=measure,
        own_lo=own_lo,
        own_hi=own_hi,
        status_backend=status_backend,
    )
