"""x-slab partitioning of a sweep workload.

The sweeps process events in x order, and a point's RNN set depends only on
the circles containing it — so the plane can be cut into vertical slabs and
each slab swept independently, provided every slab sees *all* circles that
reach into it.  A circle reaches into slab ``[lo, hi)`` exactly when its
x-extent ``[cx - r, cx + r]`` intersects the interval; the margin by which
neighboring slabs' circle sets overlap is therefore derived from the
NN-circle radii, not a tuned constant.

Slab boundaries are chosen to balance *event counts* (two extreme events
per circle), then nudged to the midpoint between the two adjacent distinct
event abscissae so that no boundary coincides with an event — fragment
clipping at a boundary then always splits a region of constant RNN set,
never lands on a region edge.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..geometry.circle import NNCircleSet

__all__ = ["Slab", "plan_slabs"]


@dataclass(frozen=True)
class Slab:
    """One vertical slab of the partition.

    Attributes:
        index: position of the slab, left to right.
        own_lo, own_hi: the half-open ownership interval ``[own_lo, own_hi)``
            (``-inf`` / ``+inf`` at the ends); the slab's sweep output is
            clipped to it, so every point belongs to exactly one slab.
        members: indices (into the parent ``NNCircleSet``) of the circles
            whose x-extent intersects the ownership interval.
    """

    index: int
    own_lo: float
    own_hi: float
    members: np.ndarray

    @property
    def n_members(self) -> int:
        return len(self.members)


def plan_slabs(circles: NNCircleSet, n_slabs: int) -> "list[Slab]":
    """Partition a circle set into at most ``n_slabs`` x-slabs.

    Fewer slabs than requested are returned when the event abscissae do not
    admit that many distinct cuts (e.g. many coincident extremes).  One slab
    spanning the whole line is returned for ``n_slabs <= 1`` or an empty
    circle set — that degenerate plan makes the pipeline identical to the
    serial sweep.
    """
    n = len(circles)
    if n_slabs <= 1 or n == 0:
        return [Slab(0, -math.inf, math.inf, np.arange(n, dtype=np.int64))]

    x_lo = np.asarray(circles.x_lo, dtype=float)
    x_hi = np.asarray(circles.x_hi, dtype=float)
    events = np.sort(np.concatenate([x_lo, x_hi]))
    m = len(events)

    boundaries: "list[float]" = []
    for j in range(1, n_slabs):
        k = (j * m) // n_slabs
        # Advance to the next strict increase so the midpoint separates
        # two distinct event abscissae.
        while k < m and events[k] <= events[k - 1]:
            k += 1
        if k >= m:
            break
        b = (events[k - 1] + events[k]) / 2.0
        # Guard against midpoint rounding onto an endpoint (adjacent
        # floats) and against duplicate cuts from clustered quantiles.
        if not (events[k - 1] < b < events[k]):
            continue
        if boundaries and b <= boundaries[-1]:
            continue
        boundaries.append(b)

    bounds = [-math.inf, *boundaries, math.inf]
    slabs = []
    for i in range(len(bounds) - 1):
        lo, hi = bounds[i], bounds[i + 1]
        members = np.nonzero((x_hi > lo) & (x_lo < hi))[0].astype(np.int64)
        slabs.append(Slab(i, lo, hi, members))
    return slabs
