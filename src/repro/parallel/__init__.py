"""repro.parallel — slab-partitioned multi-process build pipeline.

The CREST sweeps are single-core Python; this package partitions a build
along x into *slabs*, sweeps each slab in a separate process, and stitches
the per-slab fragments back into one :class:`~repro.core.regionset.RegionSet`
whose query answers match the serial engine.  See :mod:`.pipeline` for the
correctness argument and :mod:`.slabs` for the partitioning scheme.

Entry points:

* ``build_parallel`` — the pipeline itself (same contract as ``run_crest``).
* The ``linf-parallel`` / ``l2-parallel`` engines registered in
  :data:`repro.core.registry.REGISTRY`, reachable from ``RNNHeatMap.build``,
  ``HeatMapService.build`` and the CLI via ``workers=`` / ``--workers``.
"""

from .pipeline import build_parallel, resolve_workers
from .slabs import Slab, plan_slabs
from .worker import SlabTask, clip_fragments, sweep_slab

__all__ = [
    "Slab",
    "SlabTask",
    "build_parallel",
    "clip_fragments",
    "plan_slabs",
    "resolve_workers",
    "sweep_slab",
]
