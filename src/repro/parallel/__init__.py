"""repro.parallel — slab-partitioned multi-process build pipeline.

The CREST sweeps are single-core Python; this package partitions a build
along x into *slabs*, sweeps each slab in a separate process, and stitches
the per-slab fragments back into one :class:`~repro.core.regionset.RegionSet`
whose query answers match the serial engine.  See :mod:`.pipeline` for the
correctness argument and :mod:`.slabs` for the partitioning scheme.

Entry points:

* ``build_parallel`` — the pipeline itself (same contract as ``run_crest``).
* The ``linf-parallel`` / ``l2-parallel`` engines registered in
  :data:`repro.core.registry.REGISTRY`, reachable from ``RNNHeatMap.build``,
  ``HeatMapService.build`` and the CLI via ``workers=`` / ``--workers``.
* ``close_pool`` — explicit shutdown of the worker pool that is otherwise
  kept alive and reused across builds (see :mod:`.pool`).

The clip/stitch primitives themselves live in
:mod:`repro.core.stitching` and are shared with the incremental dirty-band
splicer (:mod:`repro.dynamic.incremental`); they remain importable from
here for compatibility.
"""

from ..core.stitching import clip_fragments, stitch_fragments
from .pipeline import build_parallel, resolve_workers
from .pool import close_pool, pool_stats
from .slabs import Slab, plan_slabs
from .worker import SlabTask, sweep_slab

__all__ = [
    "Slab",
    "SlabTask",
    "build_parallel",
    "clip_fragments",
    "close_pool",
    "plan_slabs",
    "pool_stats",
    "resolve_workers",
    "stitch_fragments",
    "sweep_slab",
]
