"""A process pool shared across parallel builds.

Spawning a ``ProcessPoolExecutor`` per build costs worker startup (fork +
interpreter warm-up) on every call — measurable against city-scale sweeps
and dominant for the small re-sweeps the incremental pipeline issues.  This
module keeps one lazily created executor alive across builds:

* ``lease_pool(n)`` returns the shared executor when its size matches the
  request, creating it on first use.  A request for a *different* worker
  count returns ``None`` and the caller falls back to a per-build pool —
  resizing a live pool under other callers would be a correctness hazard
  for their in-flight maps.
* ``discard_pool()`` drops a broken executor so the next lease starts
  fresh (the pipeline calls it when a pool raises).
* ``close_pool()`` is the explicit operator shutdown; it is also installed
  as an ``atexit`` hook so worker processes never outlive the interpreter.

The pool is per-process module state guarded by a lock; worker processes
themselves never import this module's state (tasks travel by pickle).
"""

from __future__ import annotations

import atexit
import threading

__all__ = ["lease_pool", "close_pool", "discard_pool", "pool_stats"]

_lock = threading.Lock()
_pool = None
_pool_workers: "int | None" = None
_created = 0  # lifetime count of shared executors created (observability)
_atexit_registered = False


def lease_pool(max_workers: int):
    """The shared executor for ``max_workers``, or ``None`` on a size
    mismatch (caller should use a private per-build pool)."""
    global _pool, _pool_workers, _created, _atexit_registered
    with _lock:
        if _pool is not None:
            return _pool if _pool_workers == max_workers else None
        from concurrent.futures import ProcessPoolExecutor

        _pool = ProcessPoolExecutor(max_workers=max_workers)
        _pool_workers = max_workers
        _created += 1
        if not _atexit_registered:
            atexit.register(close_pool)
            _atexit_registered = True
        return _pool


def discard_pool() -> None:
    """Forget a (possibly broken) shared pool without waiting on it."""
    global _pool, _pool_workers
    with _lock:
        pool, _pool, _pool_workers = _pool, None, None
    if pool is not None:
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass


def close_pool() -> None:
    """Shut down the shared pool (no-op when none is alive)."""
    global _pool, _pool_workers
    with _lock:
        pool, _pool, _pool_workers = _pool, None, None
    if pool is not None:
        pool.shutdown(wait=True)


def pool_stats() -> dict:
    """Observability snapshot: live worker count and executors created."""
    with _lock:
        return {
            "alive": _pool is not None,
            "workers": _pool_workers,
            "created": _created,
        }
