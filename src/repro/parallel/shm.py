"""Shared-memory column transport for per-slab sweep results.

Returning a slab's clipped fragments by pickling them costs the parent a
second O(fragments) pass of object construction — every ``RectFragment`` /
``ArcFragment`` (and its ``frozenset``) is serialized in the worker and
rebuilt by the unpickler, and at city scale that transport rivals the sweep
itself.  Workers therefore flatten their fragments into parallel numpy
columns (one float column per scalar field, RNN sets in CSR form), park the
columns in one ``multiprocessing.shared_memory`` segment, and send back only
a tiny picklable :class:`ColumnBlock` handle.  The parent maps the segment,
copies the columns out, unlinks it, and rebuilds fragments exactly once.

Lifetime protocol: the *worker* creates the segment and immediately
unregisters it from its own ``resource_tracker`` (otherwise the tracker
would unlink the segment when the worker exits, racing the parent's read);
ownership passes with the handle, and the *parent* unlinks after copying.
:func:`claim_columns` and :func:`discard_block` are the only two legitimate
ends of a published block's life.

When shared memory is unavailable (permissions, exotic platforms) the
columns travel inline in the handle — still one array pickle per column
rather than per-fragment object graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from ..core.regionset import ArcFragment, RectFragment
from ..geometry.arcs import Arc

__all__ = [
    "ColumnBlock",
    "fragments_to_columns",
    "columns_to_fragments",
    "publish_columns",
    "claim_columns",
    "discard_block",
]

#: Column order is the wire layout — packing and claiming must agree on it.
_RECT_COLUMNS = (
    ("x_lo", "<f8"), ("x_hi", "<f8"), ("heat", "<f8"),
    ("y_lo", "<f8"), ("y_hi", "<f8"),
)
_ARC_COLUMNS = (
    ("x_lo", "<f8"), ("x_hi", "<f8"), ("heat", "<f8"),
    ("lo_idx", "<i8"), ("lo_kind", "<i8"),
    ("lo_cx", "<f8"), ("lo_cy", "<f8"), ("lo_r", "<f8"),
    ("hi_idx", "<i8"), ("hi_kind", "<i8"),
    ("hi_cx", "<f8"), ("hi_cy", "<f8"), ("hi_r", "<f8"),
)


@dataclass(frozen=True)
class ColumnBlock:
    """Picklable handle to one slab's fragment columns.

    ``shm_name`` names the shared-memory segment holding the columns in
    :data:`_RECT_COLUMNS` / :data:`_ARC_COLUMNS` order followed by the two
    RNN CSR arrays; ``None`` means the columns travel inline in ``inline``
    (the no-shared-memory fallback).  ``n_fragments`` and ``n_rnn_values``
    fix every column length, so the layout needs no per-column bookkeeping.
    """

    kind: str  # 'rect' | 'arc'
    n_fragments: int
    n_rnn_values: int
    shm_name: "str | None" = None
    inline: "dict | None" = None


def fragments_to_columns(fragments: list) -> "tuple[str, dict]":
    """Flatten a fragment list into parallel numpy columns.

    The RNN sets become a CSR pair (``rnn_offsets`` of length n+1 and
    ``rnn_values``); everything else is one column per scalar field.
    Fragment order is preserved — the stitcher depends on slab output
    staying x-ordered.
    """
    n = len(fragments)
    kind = "arc" if n and isinstance(fragments[0], ArcFragment) else "rect"
    cols: "dict[str, np.ndarray]" = {}
    cols["x_lo"] = np.fromiter((f.x_lo for f in fragments), "<f8", n)
    cols["x_hi"] = np.fromiter((f.x_hi for f in fragments), "<f8", n)
    cols["heat"] = np.fromiter((f.heat for f in fragments), "<f8", n)
    if kind == "rect":
        cols["y_lo"] = np.fromiter((f.y_lo for f in fragments), "<f8", n)
        cols["y_hi"] = np.fromiter((f.y_hi for f in fragments), "<f8", n)
    else:
        for prefix, attr in (("lo", "lower"), ("hi", "upper")):
            arcs = [getattr(f, attr) for f in fragments]
            cols[f"{prefix}_idx"] = np.fromiter((a.circle_idx for a in arcs), "<i8", n)
            cols[f"{prefix}_kind"] = np.fromiter((a.kind for a in arcs), "<i8", n)
            cols[f"{prefix}_cx"] = np.fromiter((a.cx for a in arcs), "<f8", n)
            cols[f"{prefix}_cy"] = np.fromiter((a.cy for a in arcs), "<f8", n)
            cols[f"{prefix}_r"] = np.fromiter((a.r for a in arcs), "<f8", n)
    offsets = np.zeros(n + 1, "<i8")
    np.cumsum([len(f.rnn) for f in fragments], out=offsets[1:])
    total = int(offsets[-1])
    cols["rnn_offsets"] = offsets
    cols["rnn_values"] = np.fromiter(
        (c for f in fragments for c in f.rnn), "<i8", total
    )
    return kind, cols


def _make_arc(idx, kind, cx, cy, r):
    # Frozen-dataclass __init__ pays one object.__setattr__ per field;
    # rebuilding through __new__ + a direct __dict__.update (the same path
    # the unpickler takes) shaves ~20% off the parent's rebuild pass.
    a = Arc.__new__(Arc)
    a.__dict__.update(circle_idx=idx, kind=kind, cx=cx, cy=cy, r=r)
    return a


def _make_rect(x_lo, x_hi, y_lo, y_hi, heat, rnn):
    f = RectFragment.__new__(RectFragment)
    f.__dict__.update(x_lo=x_lo, x_hi=x_hi, y_lo=y_lo, y_hi=y_hi,
                      heat=heat, rnn=rnn)
    return f


def _make_arc_fragment(x_lo, x_hi, lower, upper, heat, rnn):
    f = ArcFragment.__new__(ArcFragment)
    f.__dict__.update(x_lo=x_lo, x_hi=x_hi, lower=lower, upper=upper,
                      heat=heat, rnn=rnn)
    return f


def columns_to_fragments(kind: str, cols: "dict[str, np.ndarray]") -> list:
    """Rebuild the fragment list a worker flattened (order preserved)."""
    x_lo = cols["x_lo"].tolist()
    x_hi = cols["x_hi"].tolist()
    heat = cols["heat"].tolist()
    offsets = cols["rnn_offsets"].tolist()
    values = cols["rnn_values"].tolist()
    rnns = list(map(
        frozenset, map(values.__getitem__, map(slice, offsets[:-1], offsets[1:]))
    ))
    if kind == "rect":
        return list(map(
            _make_rect, x_lo, x_hi,
            cols["y_lo"].tolist(), cols["y_hi"].tolist(), heat, rnns,
        ))
    lowers = list(map(
        _make_arc, cols["lo_idx"].tolist(), cols["lo_kind"].tolist(),
        cols["lo_cx"].tolist(), cols["lo_cy"].tolist(), cols["lo_r"].tolist(),
    ))
    uppers = list(map(
        _make_arc, cols["hi_idx"].tolist(), cols["hi_kind"].tolist(),
        cols["hi_cx"].tolist(), cols["hi_cy"].tolist(), cols["hi_r"].tolist(),
    ))
    return list(map(_make_arc_fragment, x_lo, x_hi, lowers, uppers, heat, rnns))


def _column_layout(kind: str, n: int, n_values: int):
    """(name, dtype, length) triples in wire order."""
    named = _RECT_COLUMNS if kind == "rect" else _ARC_COLUMNS
    layout = [(name, np.dtype(dt), n) for name, dt in named]
    layout.append(("rnn_offsets", np.dtype("<i8"), n + 1))
    layout.append(("rnn_values", np.dtype("<i8"), n_values))
    return layout


def publish_columns(kind: str, cols: "dict[str, np.ndarray]") -> ColumnBlock:
    """Park columns in a fresh shared-memory segment (worker side).

    Falls back to an inline handle if the segment cannot be created; the
    caller never needs to care which transport was used.
    """
    n = int(len(cols["x_lo"]))
    n_values = int(len(cols["rnn_values"]))
    layout = _column_layout(kind, n, n_values)
    total = sum(dtype.itemsize * length for _name, dtype, length in layout)
    try:
        shm = shared_memory.SharedMemory(create=True, size=max(total, 1))
    except Exception:
        return ColumnBlock(kind, n, n_values, inline=cols)
    try:
        off = 0
        for name, dtype, length in layout:
            dest = np.frombuffer(shm.buf, dtype=dtype, count=length, offset=off)
            dest[:] = cols[name]
            # Release the view before close(): mmap refuses to close while
            # an exported buffer is alive.
            del dest
            off += dtype.itemsize * length
        name_out = shm.name
    except Exception:
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:
            pass
        return ColumnBlock(kind, n, n_values, inline=cols)
    # Ownership passes to the parent with the handle: stop this process's
    # resource tracker from unlinking the segment when the worker exits.
    try:
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass
    shm.close()
    return ColumnBlock(kind, n, n_values, shm_name=name_out)


def claim_columns(block: ColumnBlock) -> "tuple[str, dict]":
    """Copy a published block's columns out and unlink its segment."""
    if block.shm_name is None:
        return block.kind, block.inline
    shm = shared_memory.SharedMemory(name=block.shm_name)
    try:
        cols: "dict[str, np.ndarray]" = {}
        off = 0
        for name, dtype, length in _column_layout(
            block.kind, block.n_fragments, block.n_rnn_values
        ):
            cols[name] = np.frombuffer(
                shm.buf, dtype=dtype, count=length, offset=off
            ).copy()
            off += dtype.itemsize * length
    finally:
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:
            pass
    return block.kind, cols


def discard_block(block: "ColumnBlock | None") -> None:
    """Unlink a published block without reading it (abandoned builds)."""
    if block is None or block.shm_name is None:
        return
    try:
        shm = shared_memory.SharedMemory(name=block.shm_name)
    except FileNotFoundError:
        return
    shm.close()
    try:
        shm.unlink()
    except FileNotFoundError:
        pass
