"""Command-line interface.

    rnnhm heatmap --dataset nyc --clients 2000 --facilities 600 \\
        --metric l2 --out nyc.pgm
    rnnhm query --dataset nyc --probes 100000 --tile-zoom 2
    rnnhm update --clients 2000 --updates 50 --rebuild auto
    rnnhm figure 16 --scale small
    rnnhm info

Also runnable as ``python -m repro ...``.  Algorithm choices everywhere are
derived from the algorithm registry (``repro.core.registry.REGISTRY``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .core.registry import REGISTRY

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rnnhm",
        description="Reverse Nearest Neighbor heat maps (CREST) — "
        "reproduction of Sun et al., ICDE 2016",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    hm = sub.add_parser("heatmap", help="build and render a heat map")
    hm.add_argument("--dataset", default="nyc",
                    choices=("nyc", "la", "uniform", "zipfian"))
    hm.add_argument("--clients", type=int, default=2000)
    hm.add_argument("--facilities", type=int, default=600)
    hm.add_argument("--metric", default="l2", choices=("l1", "l2", "linf"))
    hm.add_argument("--algorithm", "--engine", default="crest",
                    choices=REGISTRY.names())
    hm.add_argument("--k", type=int, default=1,
                    help="RkNN order (approximate engines serve up to their "
                         "registered max_k; exact sweeps any k)")
    hm.add_argument("--recall", type=float, default=None,
                    help="approximate-engine recall knob in (0, 1] "
                         "(engines without knobs reject it)")
    hm.add_argument("--resolution", type=int, default=400)
    hm.add_argument("--out", type=Path, default=None,
                    help="output PGM path (default: ASCII to stdout)")
    hm.add_argument("--seed", type=int, default=0)
    hm.add_argument("--top-k", type=int, default=5,
                    help="report the top-k heat values")
    hm.add_argument("--workers", type=int, default=None,
                    help="build through the slab-partitioned multi-process "
                         "pipeline with this many workers (default: serial; "
                         "0 or a negative value means one per CPU)")

    fig = sub.add_parser("figure", help="regenerate a paper figure's series")
    fig.add_argument("number", choices=("16", "17", "18", "19", "1", "15"))
    fig.add_argument("--scale", default="small", choices=("small", "medium"),
                     help="small: seconds-to-minutes; medium: larger sweeps")
    fig.add_argument("--datasets", nargs="*", default=None)
    fig.add_argument("--csv", type=Path, default=None, help="save table as CSV")
    fig.add_argument("--svg", type=Path, default=None,
                     help="also render the figure as an SVG line chart")
    fig.add_argument("--out-dir", type=Path, default=None,
                     help="figure 1/15: directory for rendered PGMs")

    qr = sub.add_parser(
        "query", aliases=["serve-queries"],
        help="serve batched point probes and tiles through HeatMapService",
    )
    qr.add_argument("--dataset", default="uniform",
                    choices=("nyc", "la", "uniform", "zipfian"))
    qr.add_argument("--clients", type=int, default=2000)
    qr.add_argument("--facilities", type=int, default=600)
    qr.add_argument("--metric", default="l2", choices=("l1", "l2", "linf"))
    qr.add_argument("--algorithm", "--engine", default="crest",
                    choices=REGISTRY.names())
    qr.add_argument("--k", type=int, default=1,
                    help="reverse k-NN order (approximate engines allow "
                         "k up to their registry max_k)")
    qr.add_argument("--recall", type=float, default=None,
                    help="approximate-engine recall knob in (0, 1] "
                         "(engines without knobs reject it)")
    qr.add_argument("--probes", type=int, default=100_000,
                    help="random point probes to answer in one batch")
    qr.add_argument("--top-k", type=int, default=5)
    qr.add_argument("--tile-zoom", type=int, default=2,
                    help="warm the full tile pyramid level (pass -1 to skip)")
    qr.add_argument("--tile-size", type=int, default=128)
    qr.add_argument("--seed", type=int, default=0)
    qr.add_argument("--workers", type=int, default=None,
                    help="run the cold build through the multi-process "
                         "pipeline (default: serial; 0/negative: one per CPU)")
    qr.add_argument("--store-dir", type=Path, default=None,
                    help="persistent result store directory: evicted builds "
                         "demote to disk and identical re-builds promote "
                         "back instead of re-sweeping")
    qr.add_argument("--async", dest="use_async", action="store_true",
                    help="serve through the asyncio front end "
                         "(AsyncHeatMapService): concurrent simulated "
                         "viewers, request coalescing, latency percentiles")
    qr.add_argument("--concurrency", type=int, default=16,
                    help="--async: number of concurrent simulated viewers "
                         "(each replays builds, tile pans and probe batches)")

    sh = sub.add_parser(
        "serve-http",
        help="serve heat maps over HTTP: slippy-map raster tiles, JSON "
             "batch queries, fingerprint-addressed builds and dynamic "
             "updates (stdlib asyncio, no framework)",
    )
    sh.add_argument("--host", default="127.0.0.1")
    sh.add_argument("--port", type=int, default=8080,
                    help="TCP port to bind (0 picks a free port)")
    sh.add_argument("--workers", type=int, default=8,
                    help="executor threads serving blocking work "
                         "(sweeps, renders, probe batches)")
    sh.add_argument("--build-workers", type=int, default=None,
                    help="default process workers for cold builds "
                         "(default: serial; 0/negative: one per CPU)")
    sh.add_argument("--tile-size", type=int, default=256)
    sh.add_argument("--max-tiles", type=int, default=2048,
                    help="tile LRU capacity")
    sh.add_argument("--max-results", type=int, default=8,
                    help="built heat-map LRU capacity")
    sh.add_argument("--store-dir", type=Path, default=None,
                    help="persistent result store directory (evicted builds "
                         "demote to disk, identical re-builds promote back)")
    sh.add_argument("--cmap", default="heat", choices=("heat", "gray_dark"),
                    help="default tile colormap (?cmap= overrides per tile)")
    sh.add_argument("--fleet-proxy", metavar="REPLICAS", default=None,
                    help="run as a fleet coordinator instead of a replica: "
                         "comma-separated host:port replica addresses; "
                         "tiles/queries route to ring owners, builds fan "
                         "out, /fleet/stats aggregates (see docs/fleet.md)")
    sh.add_argument("--replica", action="store_true",
                    help="run as a fleet replica: the shared --store-dir "
                         "becomes the build write-through + cross-process "
                         "sweep-lease layer (exactly one sweep per "
                         "fingerprint fleet-wide)")
    sh.add_argument("--ring-vnodes", type=int, default=128,
                    help="--fleet-proxy: virtual nodes per replica on the "
                         "consistent-hash ring")
    sh.add_argument("--drain-grace", type=float, default=10.0,
                    help="seconds to wait for in-flight requests on "
                         "SIGTERM/SIGINT before force-closing connections")
    sh.add_argument("--max-inflight", type=int, default=None,
                    help="admission control: shed requests 503+Retry-After "
                         "past this many in flight (default: unbounded; "
                         "/healthz is always exempt)")
    sh.add_argument("--health-interval", type=float, default=0.5,
                    help="--fleet-proxy: seconds between replica health "
                         "probes driving ring ejection/re-admission "
                         "(0 disables the monitor)")

    up = sub.add_parser(
        "update",
        help="replay a random update workload against a DynamicHeatMap, "
             "exercising incremental dirty-band re-sweeps",
    )
    up.add_argument("--dataset", default="uniform",
                    choices=("nyc", "la", "uniform", "zipfian"))
    up.add_argument("--clients", type=int, default=2000)
    up.add_argument("--facilities", type=int, default=400)
    up.add_argument("--metric", default="l2", choices=("l1", "l2", "linf"))
    up.add_argument("--updates", type=int, default=20,
                    help="number of updates to replay (client moves/adds/"
                         "removes and facility moves)")
    up.add_argument("--rebuild", default="auto",
                    choices=("auto", "incremental", "full"),
                    help="rebuild policy for DynamicHeatMap.result()")
    up.add_argument("--check-every", type=int, default=0,
                    help="every N updates, verify answers against a "
                         "from-scratch sweep (0: never)")
    up.add_argument("--seed", type=int, default=0)

    ver = sub.add_parser("verify", help="build a heat map and self-verify it "
                         "against the brute-force RNN definition")
    ver.add_argument("--dataset", default="uniform",
                     choices=("nyc", "la", "uniform", "zipfian"))
    ver.add_argument("--clients", type=int, default=300)
    ver.add_argument("--facilities", type=int, default=60)
    ver.add_argument("--metric", default="l2", choices=("l1", "l2", "linf"))
    ver.add_argument("--algorithm", default="crest",
                     choices=("crest", "crest-a", "baseline"))
    ver.add_argument("--probes", type=int, default=500)
    ver.add_argument("--seed", type=int, default=0)

    mx = sub.add_parser("maxregion", help="find the maximum-influence region "
                        "(the optimal-location query)")
    mx.add_argument("--dataset", default="uniform",
                    choices=("nyc", "la", "uniform", "zipfian"))
    mx.add_argument("--clients", type=int, default=200)
    mx.add_argument("--facilities", type=int, default=40)
    mx.add_argument("--metric", default="l2", choices=("l1", "l2", "linf"))
    mx.add_argument("--algorithm", default="crest", choices=("crest", "pruning"))
    mx.add_argument("--seed", type=int, default=0)

    sub.add_parser("claims", help="check the paper's qualitative claims "
                   "(Section VIII shapes) at laptop scale")

    sub.add_parser("info", help="print package and experiment inventory")
    return parser


def _cli_workers(workers: "int | None") -> "int | None":
    """CLI convention: absent means serial, 0/negative means one per CPU."""
    if workers is None or workers > 0:
        return workers
    import os

    return os.cpu_count() or 1


def _engine_options(args) -> "dict | None":
    """Engine knobs from CLI flags (None when no knob flag was passed, so
    knob-less engines never see an options dict to reject)."""
    opts = {}
    if getattr(args, "recall", None) is not None:
        opts["recall"] = args.recall
    return opts or None


def _cmd_heatmap(args) -> int:
    from .core.heatmap import RNNHeatMap
    from .data.datasets import get_dataset
    from .data.sampling import sample_clients_facilities
    from .render.ascii_art import ascii_heat_map
    from .render.colormap import apply_colormap
    from .render.image import write_pgm

    pool = get_dataset(
        args.dataset, n=4 * (args.clients + args.facilities), seed=args.seed
    )
    clients, facilities = sample_clients_facilities(
        pool, args.clients, args.facilities, seed=args.seed + 1
    )
    spec = REGISTRY.get(args.algorithm)
    if spec.builder is not None:
        result = spec.builder(
            clients, facilities, metric=args.metric, k=args.k,
            options=spec.normalized_options(_engine_options(args)),
        )
    else:
        hm = RNNHeatMap(clients, facilities, metric=args.metric, k=args.k)
        result = hm.build(args.algorithm, workers=_cli_workers(args.workers))
    grid, bounds = result.rasterize(args.resolution, args.resolution)
    workers_note = (
        f" workers={result.stats.n_workers} slabs={result.stats.n_slabs}"
        if result.stats.n_slabs > 1 or result.stats.n_workers > 1 else ""
    )
    print(
        f"dataset={args.dataset} |O|={args.clients} |F|={args.facilities} "
        f"metric={args.metric} algorithm={result.stats.algorithm}"
        + workers_note
    )
    print(
        f"labels(k)={result.stats.labels} fragments={result.stats.n_fragments} "
        f"max_heat={result.stats.max_heat:g}"
    )
    print(f"top-{args.top_k} heats: "
          + ", ".join(f"{h:g}" for h in result.region_set.top_k_heats(args.top_k)))
    if args.out is not None:
        write_pgm(args.out, apply_colormap(grid, "gray_dark"))
        print(f"wrote {args.out}")
    else:
        print(ascii_heat_map(grid))
    return 0


def _cmd_query(args) -> int:
    import time

    import numpy as np

    from .service import HeatMapService

    if args.use_async:
        return _cmd_query_async(args)

    clients, facilities = _instance(args)
    service = HeatMapService(tile_size=args.tile_size, store_dir=args.store_dir)

    t0 = time.perf_counter()
    handle = service.build(
        clients, facilities, metric=args.metric, algorithm=args.algorithm,
        k=args.k, workers=_cli_workers(args.workers),
        engine_options=_engine_options(args),
    )
    build_s = time.perf_counter() - t0
    world = service.world(handle)
    result = service.result(handle)
    workers_note = (
        f" workers={result.stats.n_workers} slabs={result.stats.n_slabs}"
        if result.stats.n_slabs > 1 or result.stats.n_workers > 1 else ""
    )
    print(
        f"built {args.dataset} |O|={args.clients} |F|={args.facilities} "
        f"metric={args.metric} algorithm={result.stats.algorithm}"
        f"{workers_note} in {build_s:.2f}s "
        f"({len(result.region_set)} fragments, handle {handle[:12]}...)"
    )

    rng = np.random.default_rng(args.seed + 2)
    pts = np.column_stack([
        rng.uniform(world.x_lo, world.x_hi, args.probes),
        rng.uniform(world.y_lo, world.y_hi, args.probes),
    ])
    t0 = time.perf_counter()
    heats = service.heat_at_many(handle, pts)
    batch_s = time.perf_counter() - t0
    rate = args.probes / batch_s if batch_s > 0 else float("inf")
    probe_stats = (
        f"; mean heat {heats.mean():.3f}, max {heats.max():g}"
        if len(heats) else ""
    )
    print(
        f"answered {args.probes:,} point probes in {batch_s*1e3:.1f} ms "
        f"({rate:,.0f} probes/s)" + probe_stats
    )
    print(f"top-{args.top_k} heats: "
          + ", ".join(f"{h:g}" for h in service.top_k_heats(handle, args.top_k)))

    if args.tile_zoom > 8:
        print(f"--tile-zoom {args.tile_zoom} would render "
              f"{4 ** args.tile_zoom:,} tiles; capped at 8 for the CLI "
              "(use HeatMapService.viewport for windowed deep zooms)")
        return 1
    if args.tile_zoom >= 0:
        t0 = time.perf_counter()
        tiles = service.viewport(handle, args.tile_zoom, world)
        cold_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        service.viewport(handle, args.tile_zoom, world)  # warm pass
        warm_s = time.perf_counter() - t0
        print(
            f"tile level {args.tile_zoom}: {len(tiles)} tiles of "
            f"{args.tile_size}px — cold {cold_s*1e3:.1f} ms, "
            f"warm {warm_s*1e3:.1f} ms (cache)"
        )
    print("service stats: " + ", ".join(
        f"{k}={v}" for k, v in service.stats_snapshot().items()))
    return 0


def _cmd_query_async(args) -> int:
    """serve-queries --async: concurrent viewers against the asyncio front
    end, with request coalescing and per-request latency percentiles."""
    import asyncio
    import time

    import numpy as np

    from .service import AsyncHeatMapService
    from .service.latency import LatencyRecorder
    from .service.tiles import tiles_in_window

    clients, facilities = _instance(args)
    n_viewers = max(1, args.concurrency)
    if args.tile_zoom > 8:
        print(f"--tile-zoom {args.tile_zoom} would render "
              f"{4 ** args.tile_zoom:,} tiles; capped at 8 for the CLI")
        return 1

    async def serve() -> int:
        svc = AsyncHeatMapService(
            max_workers=min(32, n_viewers + 4), tile_size=args.tile_size,
            store_dir=args.store_dir,
        )
        recorder = LatencyRecorder()
        timed = recorder.timed

        try:
            t_all = time.perf_counter()
            # Every viewer asks for the same build at once: single-flight
            # coalescing sweeps exactly once.
            handles = await asyncio.gather(*(
                timed("build", svc.build(
                    clients, facilities, metric=args.metric,
                    algorithm=args.algorithm, k=args.k,
                    workers=_cli_workers(args.workers),
                    engine_options=_engine_options(args),
                ))
                for _ in range(n_viewers)
            ))
            handle = handles[0]
            world = await svc.world(handle)
            per_viewer = max(1, args.probes // n_viewers)

            async def viewer(i: int) -> None:
                vr = np.random.default_rng(args.seed + 10 + i)
                if args.tile_zoom >= 0:
                    addresses = tiles_in_window(world, args.tile_zoom, world)
                    vr.shuffle(addresses)
                    for tx, ty in addresses:
                        await timed("tile", svc.tile(
                            handle, args.tile_zoom, tx, ty,
                            tile_size=args.tile_size,
                        ))
                pts = np.column_stack([
                    vr.uniform(world.x_lo, world.x_hi, per_viewer),
                    vr.uniform(world.y_lo, world.y_hi, per_viewer),
                ])
                await timed("probe", svc.heat_at_many(handle, pts))

            await asyncio.gather(*(viewer(i) for i in range(n_viewers)))
            wall = time.perf_counter() - t_all
        finally:
            await svc.aclose()

        stats = svc.stats
        tile_requests = stats.tile_renders + stats.tile_cache_hits \
            + stats.coalesced_tiles
        print(
            f"async serve: {n_viewers} viewers, {recorder.count('tile')} tile "
            f"requests + {n_viewers} probe batches of {per_viewer} in "
            f"{wall:.2f}s (executor bound {min(32, n_viewers + 4)})"
        )
        print(
            f"coalescing: builds swept {stats.builds} "
            f"(coalesced {stats.coalesced_builds}/{n_viewers - 1}); tiles "
            f"rendered {stats.tile_renders}/{tile_requests} requests "
            f"(coalesced {stats.coalesced_tiles}, cache hits "
            f"{stats.tile_cache_hits}, inflight peak {stats.inflight_peak})"
        )
        for line in recorder.report():
            print(line)
        print("service stats: " + ", ".join(
            f"{k}={v}" for k, v in svc.stats_snapshot().items()))
        # Self-check: a single fingerprint must never sweep twice.
        if stats.builds + stats.promotions > 1:
            print("FAIL: duplicate build for one fingerprint")
            return 1
        return 0

    return asyncio.run(serve())


def _cmd_serve_http(args) -> int:
    """serve-http: the HTTP tile/query edge — replica or fleet proxy."""
    import asyncio

    from .server import serve

    if args.fleet_proxy:
        from .fleet import FleetProxy

        replicas = [r for r in args.fleet_proxy.split(",") if r.strip()]
        app = FleetProxy(
            replicas,
            vnodes=args.ring_vnodes,
            max_inflight=args.max_inflight,
            health_interval=args.health_interval,
        )

        def announce_proxy(port: int) -> None:
            print(f"fleet proxy on http://{args.host}:{port} routing "
                  f"{len(replicas)} replicas (GET /fleet/stats)", flush=True)

        try:
            asyncio.run(serve(
                host=args.host,
                port=args.port,
                on_bound=announce_proxy,
                app=app,
                drain_grace=args.drain_grace,
            ))
        except KeyboardInterrupt:
            print("shutting down")
        return 0

    if args.replica and args.store_dir is None:
        print("--replica needs a shared --store-dir "
              "(the fleet-wide build dedupe layer)")
        return 2

    def announce(port: int) -> None:
        role = "fleet replica" if args.replica else "heat maps"
        print(f"serving {role} on http://{args.host}:{port} "
              f"(GET /healthz, /stats, /openapi.yaml)", flush=True)

    try:
        asyncio.run(serve(
            host=args.host,
            port=args.port,
            on_bound=announce,
            drain_grace=args.drain_grace,
            max_workers=max(1, args.workers),
            build_workers=_cli_workers(args.build_workers),
            tile_size=args.tile_size,
            max_tiles=args.max_tiles,
            max_results=args.max_results,
            store_dir=args.store_dir,
            default_cmap=args.cmap,
            shared_store=args.replica,
            max_inflight=args.max_inflight,
        ))
    except KeyboardInterrupt:
        print("shutting down")
    return 0


def _cmd_update(args) -> int:
    import time

    import numpy as np

    from .dynamic import DynamicHeatMap

    clients, facilities = _instance(args)
    dyn = DynamicHeatMap(
        clients, facilities, metric=args.metric, rebuild=args.rebuild
    )
    t0 = time.perf_counter()
    dyn.result()
    build_s = time.perf_counter() - t0
    print(
        f"initial build: {args.dataset} |O|={args.clients} "
        f"|F|={args.facilities} metric={args.metric} in {build_s:.2f}s"
    )

    rng = np.random.default_rng(args.seed + 3)
    probes = np.column_stack([rng.random(500), rng.random(500)])
    total_s = 0.0
    dirty_sum = 0.0
    mismatches = 0
    for step in range(1, args.updates + 1):
        op = int(rng.integers(0, 4))
        handles = dyn.assignment.client_handles()
        if op == 0 or len(handles) <= 2:
            dyn.move_client(int(rng.choice(handles)), *rng.random(2))
        elif op == 1:
            dyn.add_client(*rng.random(2))
        elif op == 2:
            dyn.remove_client(int(rng.choice(handles)))
        else:
            fh = dyn.assignment.facility_handles()
            dyn.move_facility(int(rng.choice(fh)), *rng.random(2))
        version_before = dyn.version
        t0 = time.perf_counter()
        result = dyn.result()
        dt = time.perf_counter() - t0
        total_s += dt
        if dyn.version != version_before:  # an actual rebuild, not a no-op
            dirty_sum += result.stats.dirty_fraction
        if args.check_every and step % args.check_every == 0:
            ref = dyn.from_scratch()
            if not np.array_equal(
                result.heat_at_many(probes), ref.heat_at_many(probes)
            ) or result.rnn_at_many(probes) != ref.rnn_at_many(probes):
                mismatches += 1
                print(f"  update {step}: MISMATCH vs from-scratch sweep")
    n = max(1, args.updates)
    rebuilt = dyn.incremental_rebuilds + dyn.full_rebuilds - 1
    print(
        f"replayed {args.updates} updates in {total_s:.2f}s "
        f"({total_s / n * 1e3:.1f} ms/update, initial build {build_s:.2f}s)"
    )
    print(
        f"rebuilds: {dyn.incremental_rebuilds} incremental, "
        f"{dyn.full_rebuilds - 1} full, {args.updates - rebuilt} no-op; "
        f"mean dirty fraction {dirty_sum / max(1, rebuilt):.3f}"
    )
    if args.check_every:
        verdict = "all checks passed" if not mismatches else (
            f"{mismatches} CHECK FAILURES")
        print(f"equivalence checks every {args.check_every} updates: {verdict}")
    return 1 if mismatches else 0


def _cmd_figure(args) -> int:
    from .experiments import figures

    datasets = tuple(args.datasets) if args.datasets else figures.DEFAULT_DATASETS
    medium = args.scale == "medium"
    if args.number == "16":
        table = figures.figure16(
            ratios=(2, 4, 8, 16, 32, 64, 128) if medium else (2, 4, 8, 16, 32, 64),
            n_clients=512 if medium else 256,
            datasets=datasets,
        )
    elif args.number == "17":
        table = figures.figure17(
            sizes=(128, 256, 512, 1024, 2048, 4096) if medium else (128, 256, 512, 1024, 2048),
            datasets=datasets,
        )
    elif args.number == "18":
        table = figures.figure18(
            ratios=(2, 4, 8, 16, 32, 64) if medium else (2, 4, 8, 16, 32),
            n_clients=256 if medium else 128,
            datasets=datasets,
        )
    elif args.number == "19":
        table = figures.figure19(
            sizes=(128, 256, 512, 1024, 2048) if medium else (128, 256, 512, 1024),
            datasets=datasets,
        )
    else:  # 1 / 15: the city heat maps
        table = figures.table2_city_heatmaps(
            n_clients=20000 if medium else 2000,
            n_facilities=6000 if medium else 600,
            out_dir=args.out_dir,
        )
    table.print()
    if args.csv is not None:
        table.save_csv(args.csv)
        print(f"saved {args.csv}")
    if args.svg is not None and args.number in ("16", "17", "18", "19"):
        from .render.svg_charts import chart_from_result_table

        x_from = "ratio" if args.number in ("16", "18") else "n_clients"
        x_label = "|O|/|F|" if x_from == "ratio" else "|O|"
        chart = chart_from_result_table(
            table, f"Figure {args.number} (scaled reproduction)",
            x_label, x_from=x_from, dataset=datasets[0],
        )
        chart.save(args.svg)
        print(f"saved {args.svg}")
    return 0


def _cmd_info() -> int:
    from . import __version__
    from .core.heatmap import ALGORITHMS
    from .data.datasets import DATASET_FULL_SIZES

    print(f"rnnhm {__version__} — RNN heat maps (Sun et al., ICDE 2016)")
    print(f"algorithms: {', '.join(ALGORITHMS)} + crest-l2/pruning under L2")
    print("datasets:  " + ", ".join(
        f"{k} ({v:,})" for k, v in DATASET_FULL_SIZES.items()))
    print("figures:   16, 17 (L1 sweeps); 18, 19 (L2 sweeps); 1/15 (city maps)")
    return 0


def _instance(args):
    from .data.datasets import get_dataset
    from .data.sampling import sample_clients_facilities

    pool = get_dataset(
        args.dataset, n=4 * (args.clients + args.facilities), seed=args.seed
    )
    return sample_clients_facilities(
        pool, args.clients, args.facilities, seed=args.seed + 1
    )


def _cmd_verify(args) -> int:
    from .core.heatmap import RNNHeatMap
    from .core.verify import verify_region_set

    clients, facilities = _instance(args)
    hm = RNNHeatMap(clients, facilities, metric=args.metric)
    result = hm.build(args.algorithm)
    report = verify_region_set(hm.circles, result.region_set,
                               n_probes=args.probes)
    print(report.summary())
    for kind, point, got, expected in report.examples:
        print(f"  {kind} at {point}: got {sorted(got)} expected {sorted(expected)}")
    return 0 if report.ok else 1


def _cmd_maxregion(args) -> int:
    from .core.heatmap import RNNHeatMap

    clients, facilities = _instance(args)
    hm = RNNHeatMap(clients, facilities, metric=args.metric)
    result = hm.max_region(args.algorithm)
    print(f"max influence = {result.max_heat:g} "
          f"(serves {len(result.max_rnn)} clients)")
    if result.max_point is not None:
        print(f"at ({result.max_point[0]:.5f}, {result.max_point[1]:.5f})")
    return 0


def _cmd_claims() -> int:
    from .experiments.shapes import check_all_claims

    results = check_all_claims(verbose=True)
    return 0 if all(r.holds for r in results) else 1


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "heatmap":
        return _cmd_heatmap(args)
    if args.command in ("query", "serve-queries"):
        return _cmd_query(args)
    if args.command == "serve-http":
        return _cmd_serve_http(args)
    if args.command == "update":
        return _cmd_update(args)
    if args.command == "figure":
        return _cmd_figure(args)
    if args.command == "verify":
        return _cmd_verify(args)
    if args.command == "maxregion":
        return _cmd_maxregion(args)
    if args.command == "claims":
        return _cmd_claims()
    return _cmd_info()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
