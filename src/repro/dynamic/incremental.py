"""Incremental dirty-band re-sweeps for dynamic heat maps.

A batch of updates (clients/facilities added, removed, moved) changes the
NN-circle arrangement only inside the union of the *old and new* circles of
the affected clients: a point outside every such circle keeps its RNN set
— and therefore its heat — exactly.  So instead of re-sweeping the whole
plane, this module:

1. turns the changed circles into **dirty x-intervals** (old extent ∪ new
   extent per change, merged);
2. widens each interval to a **re-sweep band** whose boundaries coincide
   with no event abscissa of the current circle set (the same nudging
   discipline as :mod:`repro.parallel.slabs` — a cut then always splits a
   region of constant RNN set, never lands on a region edge);
3. sweeps each band with the unmodified serial engine over exactly the
   circles intersecting it (reusing the slab worker of
   :mod:`repro.parallel.worker`) and clips to the band;
4. **splices** the fresh fragments into the retained remainder of the
   previous subdivision with the shared clip/stitch primitives
   (:mod:`repro.core.stitching`).

Correctness mirrors the parallel pipeline's argument: outside the bands the
active circle set — hence the line status, the labeled pairs, and every
fragment — is identical between the old and new arrangements, so retaining
the old fragments there is exact; inside a band the serial engine sees
every circle that reaches into it, so its clipped fragments are exact.
Query answers (heat / RNN / top-k) after a splice are identical to a
from-scratch build of the current circles; only the fragment partition may
differ by healable seams.

``plan_resweep`` returns ``None`` when a band would cover the entire event
queue — the caller must degrade to a full rebuild rather than splice a
degenerate remainder.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.intervals import merge_intervals
from ..core.regionset import RegionSet
from ..core.stitching import fragment_maxima, splice_pieces
from ..core.sweep_linf import SweepStats
from ..geometry.circle import NNCircleSet
from ..parallel.worker import make_task, sweep_slab

__all__ = ["ResweepPlan", "plan_resweep", "resweep_spliced"]


@dataclass(frozen=True)
class ResweepPlan:
    """Where to re-sweep: disjoint ascending x-bands plus cost estimates.

    Attributes:
        bands: nudged ``[lo, hi]`` re-sweep intervals, pairwise disjoint and
            ascending; empty for a no-op update batch.
        dirty_fraction: fraction of the current event abscissae falling
            inside the bands — the rebuild-mode heuristic's input and the
            value recorded on the resulting ``SweepStats``.
        n_events_total: size of the current event queue (2 per circle).
    """

    bands: "list[tuple[float, float]]"
    dirty_fraction: float
    n_events_total: int


def _nudge_down(events: np.ndarray, x: float) -> float:
    """The greatest boundary <= ``x`` coinciding with no event abscissa.

    Walks left over distinct event abscissae taking midpoints until one
    strictly separates its neighbors (floating-point-adjacent events can
    collapse a midpoint onto an endpoint); returns ``-inf`` when every
    candidate to the left is exhausted.
    """
    i = int(np.searchsorted(events, x, side="left"))
    if i == len(events) or events[i] != x:
        return x  # x itself is not an event: cut exactly there
    while i > 0:
        e = float(events[i - 1])
        b = (e + x) / 2.0
        if e < b < x:
            return b
        x = e
        i -= 1
    return -math.inf


def _nudge_up(events: np.ndarray, x: float) -> float:
    """Mirror of :func:`_nudge_down`: least non-event boundary >= ``x``."""
    i = int(np.searchsorted(events, x, side="right"))
    if i == 0 or events[i - 1] != x:
        return x
    while i < len(events):
        e = float(events[i])
        b = (x + e) / 2.0
        if x < b < e:
            return b
        x = e
        i += 1
    return math.inf


def plan_resweep(
    circles: NNCircleSet,
    dirty_intervals: "list[tuple[float, float]]",
) -> "ResweepPlan | None":
    """Turn dirty x-intervals into re-sweep bands over ``circles``.

    Args:
        circles: the *current* circle set (post-update).
        dirty_intervals: ``[lo, hi]`` x-intervals outside which the
            arrangement provably did not change — typically the old and new
            x-extents of every changed circle.

    Returns:
        A :class:`ResweepPlan`, or ``None`` when the caller should run a
        full rebuild instead: the circle set is empty, or a band swallows
        the whole event queue (splicing would retain nothing).
    """
    merged = merge_intervals([iv for iv in dirty_intervals if iv[0] <= iv[1]])
    if not merged:
        return ResweepPlan([], 0.0, 2 * len(circles))
    if len(circles) == 0:
        return None
    events = np.unique(np.concatenate([circles.x_lo, circles.x_hi]))
    bands = merge_intervals(
        [(_nudge_down(events, lo), _nudge_up(events, hi)) for lo, hi in merged]
    )
    if len(bands) == 1 and bands[0][0] <= events[0] and bands[0][1] >= events[-1]:
        return None
    # Dirty fraction over the full event queue (2 per circle), counting
    # coincident extremes once per circle side — the work a band sweep
    # processes, not the distinct abscissae it spans.
    x_lo, x_hi = circles.x_lo, circles.x_hi
    total = 2 * len(circles)
    n_dirty = 0
    for lo, hi in bands:
        n_dirty += int(((x_lo >= lo) & (x_lo <= hi)).sum())
        n_dirty += int(((x_hi >= lo) & (x_hi <= hi)).sum())
    return ResweepPlan(bands, min(1.0, n_dirty / total), total)


def resweep_spliced(
    prev: RegionSet,
    circles: NNCircleSet,
    measure,
    plan: ResweepPlan,
    *,
    status_backend: str = "sortedlist",
) -> "tuple[SweepStats, RegionSet]":
    """Re-sweep the plan's bands and splice into the previous subdivision.

    Args:
        prev: the retained subdivision (must describe the pre-update world
            *outside* the plan's bands — i.e. the previous build's output).
        circles: the current (post-update) circle set; ``client_ids`` must
            be drawn from the same handle space as ``prev``'s RNN sets.
        measure: the influence measure both builds share.
        plan: output of :func:`plan_resweep` (not ``None``).

    Returns:
        ``(stats, region_set)`` with the same contract as the serial
        engines; ``stats`` counts only the work the partial sweep actually
        did and records ``dirty_fraction`` / ``n_dirty_bands``.
    """
    sweep = "l2" if circles.metric.circle_shape == "disk" else "linf"
    base = "crest-l2" if sweep == "l2" else "crest"
    stats = SweepStats(n_circles=len(circles), algorithm=f"{base}-incremental")
    stats.dirty_fraction = plan.dirty_fraction
    stats.n_dirty_bands = len(plan.bands)
    default_heat = float(measure(frozenset()))

    x_lo, x_hi = circles.x_lo, circles.x_hi
    fresh_per_band: "list[list]" = []
    for lo, hi in plan.bands:
        members = np.nonzero((x_hi > lo) & (x_lo < hi))[0].astype(np.int64)
        task = make_task(
            circles, members, measure,
            sweep=sweep, own_lo=lo, own_hi=hi, status_backend=status_backend,
        )
        r = sweep_slab(task)
        fresh_per_band.append(r.fragments)
        s = r.stats
        stats.n_events += s.n_events
        stats.n_event_batches += s.n_event_batches
        stats.labels += s.labels
        stats.measure_calls += s.measure_calls
        stats.changed_intervals += s.changed_intervals
        stats.merged_intervals += s.merged_intervals

    fragments = splice_pieces(prev.fragments, plan.bands, fresh_per_band)
    stats.n_fragments = len(fragments)
    # The previous maxima may have lived inside a band that just changed,
    # so the spliced subdivision's maxima are recomputed from scratch.
    (stats.max_heat, stats.max_heat_rnn,
     stats.max_heat_point, stats.max_rnn_size) = fragment_maxima(fragments)
    region_set = RegionSet(
        fragments, prev.transform, default_heat, circles.metric.name
    )
    return stats, region_set
