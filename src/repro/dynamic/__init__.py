"""Dynamic heat maps: incremental NN-circle maintenance + lazy rebuilds."""

from .assignment import DynamicAssignment
from .heatmap import DynamicHeatMap

__all__ = ["DynamicAssignment", "DynamicHeatMap"]
