"""Dynamic heat maps: incremental NN-circle maintenance + localized rebuilds.

``DynamicAssignment`` keeps nearest-facility assignments current under
client/facility churn; ``DynamicHeatMap`` layers lazy heat-map rebuilding
on top, re-sweeping only the dirty x-bands an update batch actually
touched and splicing the fresh fragments into the retained subdivision
(:mod:`.incremental`).
"""

from .assignment import DynamicAssignment
from .heatmap import DynamicHeatMap
from .incremental import ResweepPlan, plan_resweep, resweep_spliced

__all__ = [
    "DynamicAssignment",
    "DynamicHeatMap",
    "ResweepPlan",
    "plan_resweep",
    "resweep_spliced",
]
