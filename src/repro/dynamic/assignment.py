"""Incremental NN assignment maintenance under point churn.

The paper motivates frequent recomputation: "In some applications such as
taxi-sharing, the heat map may change as clients move around and need to be
recomputed frequently" (Section I), and assumes "there are efficient
algorithms to compute and maintain the NN-circles [12]".  This module is
that maintenance substrate: it keeps, for every client, its nearest
facility and distance, updating incrementally:

* client added/moved:   one NN query — O(log |F|)-ish.
* facility added:       only clients whose current radius exceeds their
                        distance to the new facility reassign (found with a
                        single vectorized distance pass).
* facility removed:     only its currently-assigned clients re-query.

A full heat map rebuild after a batch of updates then costs one sweep over
the refreshed circles — the expensive NN phase never restarts from scratch.
"""

from __future__ import annotations

import numpy as np

from ..errors import InvalidInputError
from ..geometry.circle import NNCircleSet
from ..geometry.metrics import Metric, get_metric
from ..nn.nncircles import nn_assign

__all__ = ["DynamicAssignment"]


class DynamicAssignment:
    """Maintains nearest-facility assignments under insertions, deletions
    and moves of both clients and facilities.

    Clients and facilities are referenced by stable integer handles; deleted
    handles are never reused.
    """

    def __init__(
        self,
        clients: np.ndarray,
        facilities: np.ndarray,
        metric: "Metric | str" = "l2",
    ) -> None:
        clients = np.asarray(clients, dtype=float)
        facilities = np.asarray(facilities, dtype=float)
        if clients.ndim != 2 or clients.shape[1] != 2 or len(clients) == 0:
            raise InvalidInputError("clients must be a non-empty (n, 2) array")
        if facilities.ndim != 2 or facilities.shape[1] != 2 or len(facilities) == 0:
            raise InvalidInputError("facilities must be a non-empty (m, 2) array")
        self.metric = get_metric(metric)
        self._clients: "dict[int, tuple[float, float]]" = {
            i: (float(x), float(y)) for i, (x, y) in enumerate(clients)
        }
        self._facilities: "dict[int, tuple[float, float]]" = {
            i: (float(x), float(y)) for i, (x, y) in enumerate(facilities)
        }
        self._next_client = len(clients)
        self._next_facility = len(facilities)
        # client handle -> (facility handle, distance)
        self._assignment: "dict[int, tuple[int, float]]" = {}
        self.stat_nn_queries = 0
        self.stat_reassignments = 0
        #: Client handles whose NN-circle (center or radius) may have
        #: changed since the last ``drain_touched()`` — the change feed the
        #: incremental heat-map rebuild localizes its re-sweep from.  An
        #: over-approximation is safe (consumers diff against a snapshot);
        #: a miss would be a correctness bug, so every mutation records
        #: every client it may touch.
        self._touched: "set[int]" = set()
        for c in self._clients:
            self._assign(c)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _facility_arrays(self):
        handles = list(self._facilities)
        pts = np.array([self._facilities[h] for h in handles], dtype=float)
        return handles, pts

    def _assign(self, client: int) -> None:
        """Full NN query for one client (used on insert/move/orphaning)."""
        handles, pts = self._facility_arrays()
        q = np.asarray(self._clients[client], dtype=float)
        d = self.metric.pairwise_to_point(pts, q)
        best = int(np.argmin(d))
        self._assignment[client] = (handles[best], float(d[best]))
        self.stat_nn_queries += 1

    def _assign_many(self, clients: "list[int]") -> None:
        """Batch NN re-query — one vectorized pass for all given clients.

        Assigns exactly what per-client :meth:`_assign` calls would (same
        distance arithmetic, same lowest-index tie-break via ``np.argmin``),
        in one ``nn_assign`` call instead of a Python loop; facility
        removals and moves re-query all their orphans through here.
        """
        if not clients:
            return
        handles, pts = self._facility_arrays()
        q = np.array([self._clients[c] for c in clients], dtype=float)
        best, dist = nn_assign(q, pts, self.metric, backend="brute")
        for c, b, d in zip(clients, best, dist):
            self._assignment[c] = (handles[int(b)], float(d))
        self.stat_nn_queries += len(clients)

    # ------------------------------------------------------------------
    # Client updates
    # ------------------------------------------------------------------
    def add_client(self, x: float, y: float) -> int:
        """Insert a client; returns its handle."""
        handle = self._next_client
        self._next_client += 1
        self._clients[handle] = (float(x), float(y))
        self._assign(handle)
        self._touched.add(handle)
        return handle

    def remove_client(self, handle: int) -> None:
        """Delete a client and its NN assignment."""
        if handle not in self._clients:
            raise InvalidInputError(f"unknown client handle {handle}")
        del self._clients[handle]
        del self._assignment[handle]
        self._touched.add(handle)

    def move_client(self, handle: int, x: float, y: float) -> None:
        """Relocate a client (the taxi-sharing 'clients move around' case)."""
        if handle not in self._clients:
            raise InvalidInputError(f"unknown client handle {handle}")
        self._clients[handle] = (float(x), float(y))
        self._assign(handle)
        self._touched.add(handle)

    # ------------------------------------------------------------------
    # Facility updates
    # ------------------------------------------------------------------
    def add_facility(self, x: float, y: float) -> int:
        """Insert a facility; only clients it wins over are touched."""
        handle = self._next_facility
        self._next_facility += 1
        self._facilities[handle] = (float(x), float(y))
        new_pt = np.array([x, y], dtype=float)
        client_handles = list(self._clients)
        pts = np.array([self._clients[c] for c in client_handles], dtype=float)
        d_new = self.metric.pairwise_to_point(pts, new_pt)
        for c, dn in zip(client_handles, d_new):
            if dn < self._assignment[c][1]:
                self._assignment[c] = (handle, float(dn))
                self.stat_reassignments += 1
                self._touched.add(c)
        return handle

    def remove_facility(self, handle: int) -> None:
        """Delete a facility; its orphaned clients re-query (one batch)."""
        if handle not in self._facilities:
            raise InvalidInputError(f"unknown facility handle {handle}")
        if len(self._facilities) == 1:
            raise InvalidInputError("cannot remove the last facility")
        del self._facilities[handle]
        orphans = [c for c, (f, _d) in self._assignment.items() if f == handle]
        self._assign_many(orphans)
        self.stat_reassignments += len(orphans)
        self._touched.update(orphans)

    def move_facility(self, handle: int, x: float, y: float) -> None:
        """Relocate a facility (remove + add, preserving the handle)."""
        if handle not in self._facilities:
            raise InvalidInputError(f"unknown facility handle {handle}")
        if len(self._facilities) == 1:
            # Single facility: every client keeps it; refresh distances.
            self._facilities[handle] = (float(x), float(y))
            self._assign_many(list(self._clients))
            self._touched.update(self._clients)
            return
        old = self._facilities[handle]
        # Orphan its clients against the remaining set, then re-add.
        del self._facilities[handle]
        orphans = [c for c, (f, _d) in self._assignment.items() if f == handle]
        self._assign_many(orphans)
        self._touched.update(orphans)
        self._facilities[handle] = (float(x), float(y))
        new_pt = np.array([x, y], dtype=float)
        client_handles = list(self._clients)
        pts = np.array([self._clients[c] for c in client_handles], dtype=float)
        d_new = self.metric.pairwise_to_point(pts, new_pt)
        for c, dn in zip(client_handles, d_new):
            if dn < self._assignment[c][1]:
                self._assignment[c] = (handle, float(dn))
                self.stat_reassignments += 1
                self._touched.add(c)
        del old

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def n_clients(self) -> int:
        """Number of live clients."""
        return len(self._clients)

    @property
    def n_facilities(self) -> int:
        """Number of live facilities."""
        return len(self._facilities)

    def client_handles(self) -> "list[int]":
        """Live client handles, ascending."""
        return sorted(self._clients)

    def facility_handles(self) -> "list[int]":
        """Live facility handles, ascending."""
        return sorted(self._facilities)

    def client_position(self, handle: int) -> "tuple[float, float]":
        """The client's current (internal-frame) coordinates."""
        return self._clients[handle]

    def facility_of(self, handle: int) -> int:
        """The client's current nearest facility handle."""
        return self._assignment[handle][0]

    def radius_of(self, handle: int) -> float:
        """The client's current NN distance (its NN-circle radius)."""
        return self._assignment[handle][1]

    def drain_touched(self) -> "set[int]":
        """Client handles possibly changed since the last drain (and reset).

        The handles may include clients whose circle ended up unchanged
        (e.g. a move that was undone) and clients that no longer exist
        (removed); consumers resolve both against their own snapshot.
        """
        touched, self._touched = self._touched, set()
        return touched

    def circle_of(self, handle: int) -> "tuple[float, float, float] | None":
        """The client's current NN-circle as ``(cx, cy, radius)``, or
        ``None`` for a handle that is not (or no longer) a client."""
        pos = self._clients.get(handle)
        if pos is None:
            return None
        return (pos[0], pos[1], self._assignment[handle][1])

    def circles(self, drop_degenerate: bool = True) -> NNCircleSet:
        """A snapshot NNCircleSet (client_ids are the stable handles)."""
        handles = sorted(self._clients)
        cx = np.array([self._clients[h][0] for h in handles])
        cy = np.array([self._clients[h][1] for h in handles])
        radius = np.array([self._assignment[h][1] for h in handles])
        return NNCircleSet(
            cx, cy, radius, self.metric,
            client_ids=np.array(handles, dtype=np.int64),
            drop_degenerate=drop_degenerate,
        )
