"""A heat map that follows a changing world.

Wraps ``DynamicAssignment`` (incremental NN-circle maintenance) with lazy
heat-map rebuilding.  Updates only mark the map stale; ``result()`` decides
how much work the accumulated update batch actually requires:

* **no-op** — every touched circle is unchanged against the last build's
  snapshot (e.g. a move that was undone): the cached result is returned
  untouched and the version counter does *not* advance, so downstream tile
  caches stay warm;
* **incremental** — the changed circles' old+new x-extents form dirty
  intervals; only the covering bands are re-swept and spliced into the
  retained subdivision (:mod:`.incremental`), giving answers identical to
  a from-scratch build at a fraction of the cost;
* **full** — the classic whole-plane sweep, taken when there is no cache
  yet, when the dirty fraction makes splicing pointless, or on request.

The ``rebuild`` knob ("auto" | "incremental" | "full") selects the policy;
"auto" compares the planned dirty fraction against
``incremental_threshold``.  Either way the result is the same map — the
equivalence gate in ``tests/test_incremental.py`` holds heat/RNN/top-k
answers bit-identical to a from-scratch build after every update.
"""

from __future__ import annotations

import threading

import numpy as np

from ..core.heatmap import HeatMapResult
from ..core.sweep_l2 import run_crest_l2
from ..core.sweep_linf import run_crest
from ..errors import AlgorithmUnsupportedError, InvalidInputError
from ..geometry.metrics import get_metric
from ..geometry.rect import Rect
from ..geometry.transforms import IDENTITY, ROTATE_L1_TO_LINF
from ..influence.measures import InfluenceMeasure, SizeMeasure
from .assignment import DynamicAssignment
from .incremental import plan_resweep, resweep_spliced

__all__ = ["DynamicHeatMap"]

_REBUILD_MODES = ("auto", "incremental", "full")

#: Dirty-region entries older than this are forgotten; a service that last
#: synced before the trimmed horizon falls back to full invalidation.
_DIRTY_LOG_LIMIT = 64

#: Above this many changed circles per batch the per-circle dirty rects
#: collapse into their bounding rectangle (coarser but still partial).
_MAX_DIRTY_RECTS = 16


class DynamicHeatMap:
    """An updatable RNN heat map over moving clients and facilities.

    All update methods take/return stable integer handles and mark the map
    stale; ``result()`` rebuilds on demand — incrementally when the update
    batch only dirtied a small part of the plane.

    Args:
        rebuild: "auto" (default) picks incremental re-sweeps while the
            dirty fraction stays under ``incremental_threshold``;
            "incremental" forces splicing whenever a retained remainder
            exists (degrading to full only when the dirty bands swallow
            the whole event queue); "full" always re-sweeps everything.
        incremental_threshold: dirty-event fraction above which "auto"
            prefers a full rebuild.

    Note: positions given to updates are in *original* coordinates; the L1
    rotation is applied internally exactly as in ``RNNHeatMap``.
    """

    def __init__(
        self,
        clients: np.ndarray,
        facilities: np.ndarray,
        *,
        metric: str = "l2",
        measure: "InfluenceMeasure | None" = None,
        rebuild: str = "auto",
        incremental_threshold: float = 0.5,
    ) -> None:
        self.metric = get_metric(metric)
        self.measure = measure if measure is not None else SizeMeasure()
        if rebuild not in _REBUILD_MODES:
            raise InvalidInputError(
                f"rebuild must be one of {_REBUILD_MODES}, got {rebuild!r}"
            )
        self.rebuild = rebuild
        self.incremental_threshold = float(incremental_threshold)
        if self.metric.name == "l1":
            self.transform = ROTATE_L1_TO_LINF
            clients = self.transform.forward_array(np.asarray(clients, dtype=float))
            facilities = self.transform.forward_array(np.asarray(facilities, dtype=float))
            internal_metric = "linf"
        else:
            self.transform = IDENTITY
            internal_metric = self.metric
        self.assignment = DynamicAssignment(clients, facilities, internal_metric)
        self._cached: "HeatMapResult | None" = None
        self._stale = False
        #: handle -> (cx, cy, radius) in internal coordinates, as of the
        #: last build; diffing against it turns "touched" into "changed".
        self._snapshot: "dict[int, tuple[float, float, float]] | None" = None
        self._pending: "set[int]" = set()
        self.rebuilds = 0
        self.full_rebuilds = 0
        self.incremental_rebuilds = 0
        #: Build counter.  It advances only when ``result()`` produced a
        #: map that may differ from the previous one — updates alone no
        #: longer bump it, so no-op update/undo sequences leave downstream
        #: caches (``HeatMapService`` tiles) untouched.
        self.version = 0
        # (version, dirty rects in original coords | None for "everything")
        self._dirty_log: "list[tuple[int, list[Rect] | None]]" = []
        #: Serializes updates against rebuilds: ``HeatMapService``
        #: refreshes dynamic handles from executor threads, so an
        #: update arriving mid-rebuild must wait for a consistent
        #: snapshot (re-entrant: result() may call from_scratch()).
        self._lock = threading.RLock()

    def _point(self, x: float, y: float) -> "tuple[float, float]":
        return self.transform.forward(x, y)

    def batch(self):
        """The update lock, for atomic multi-operation batches.

        ``with dyn.batch(): ...`` holds the re-entrant update lock across
        several update calls, so no rebuild or concurrent update
        interleaves mid-batch — the HTTP edge uses this to validate a
        whole ``/update`` request against a stable handle set before
        applying any of it.
        """
        return self._lock

    def _invalidate(self) -> None:
        self._stale = True

    # ------------------------------------------------------------------
    # Updates (each marks the map stale; rebuilds are deferred)
    # ------------------------------------------------------------------
    def add_client(self, x: float, y: float) -> int:
        """Insert a client at original-space (x, y); returns its handle."""
        with self._lock:
            self._invalidate()
            return self.assignment.add_client(*self._point(x, y))

    def remove_client(self, handle: int) -> None:
        """Delete a client; raises ``InvalidInputError`` for unknown handles."""
        with self._lock:
            self._invalidate()
            self.assignment.remove_client(handle)

    def move_client(self, handle: int, x: float, y: float) -> None:
        """Relocate a client to original-space (x, y)."""
        with self._lock:
            self._invalidate()
            self.assignment.move_client(handle, *self._point(x, y))

    def add_facility(self, x: float, y: float) -> int:
        """Insert a facility at original-space (x, y); returns its handle."""
        with self._lock:
            self._invalidate()
            return self.assignment.add_facility(*self._point(x, y))

    def remove_facility(self, handle: int) -> None:
        """Delete a facility (the last one cannot be removed)."""
        with self._lock:
            self._invalidate()
            self.assignment.remove_facility(handle)

    def move_facility(self, handle: int, x: float, y: float) -> None:
        """Relocate a facility to original-space (x, y)."""
        with self._lock:
            self._invalidate()
            self.assignment.move_facility(handle, *self._point(x, y))

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    @property
    def dirty(self) -> bool:
        """Whether the next ``result()`` call may have to rebuild."""
        return self._stale or self._cached is None

    def _changes(self) -> "list[tuple[int, tuple | None, tuple | None]]":
        """Resolve touched handles into real circle changes vs the snapshot."""
        self._pending |= self.assignment.drain_touched()
        if self._snapshot is None:
            return []
        changes = []
        for h in sorted(self._pending):
            old = self._snapshot.get(h)
            new = self.assignment.circle_of(h)
            if old != new:
                changes.append((h, old, new))
        return changes

    def _to_original_rect(self, rect: Rect) -> Rect:
        """Map an internal-frame rect to original coordinates (bbox)."""
        if self.transform.is_identity:
            return rect
        corners = [
            self.transform.inverse(x, y)
            for x in (rect.x_lo, rect.x_hi)
            for y in (rect.y_lo, rect.y_hi)
        ]
        return Rect(
            min(c[0] for c in corners), max(c[0] for c in corners),
            min(c[1] for c in corners), max(c[1] for c in corners),
        )

    def _finish_rebuild(
        self,
        result: HeatMapResult,
        changes: "list | None",
        dirty_rects: "list[Rect] | None",
    ) -> HeatMapResult:
        """Install a freshly built result and advance the version/log."""
        self._cached = result
        self.rebuilds += 1
        self.version += 1
        self._dirty_log.append((self.version, dirty_rects))
        if len(self._dirty_log) > _DIRTY_LOG_LIMIT:
            del self._dirty_log[:-_DIRTY_LOG_LIMIT]
        if self._snapshot is None or changes is None:
            self._snapshot = {
                h: self.assignment.circle_of(h)
                for h in self.assignment.client_handles()
            }
        else:
            for h, _old, new in changes:
                if new is None:
                    self._snapshot.pop(h, None)
                else:
                    self._snapshot[h] = new
        self._pending.clear()
        self._stale = False
        return result

    def _keep_cached(self) -> HeatMapResult:
        """A stale flag that resolved to zero real change: keep everything."""
        self._pending.clear()
        self._stale = False
        return self._cached

    def from_scratch(self) -> HeatMapResult:
        """A reference full sweep of the current circles.

        Pure computation: the cache, version counter and rebuild counters
        are untouched — this is the oracle the incremental splice must
        match, usable for equivalence checks at any time.
        """
        with self._lock:
            circles = self.assignment.circles()
        if circles.metric.name == "l2":
            stats, region_set = run_crest_l2(
                circles, self.measure, transform=self.transform
            )
        elif circles.metric.name == "linf":
            stats, region_set = run_crest(
                circles, self.measure, transform=self.transform
            )
        else:  # pragma: no cover - construction prevents this
            raise AlgorithmUnsupportedError(circles.metric.name)
        return HeatMapResult(region_set, stats)

    def _full_build(self) -> HeatMapResult:
        self.full_rebuilds += 1
        return self.from_scratch()

    def result(self, rebuild: "str | None" = None) -> HeatMapResult:
        """The current heat map, rebuilding only if updates occurred.

        Args:
            rebuild: per-call override of the instance policy ("auto" |
                "incremental" | "full"); only consulted when a rebuild is
                actually needed.
        """
        with self._lock:
            return self._result_locked(rebuild)

    def _result_locked(self, rebuild: "str | None") -> HeatMapResult:
        if self._cached is not None and not self._stale:
            return self._cached
        mode = self.rebuild if rebuild is None else rebuild
        if mode not in _REBUILD_MODES:
            raise InvalidInputError(
                f"rebuild must be one of {_REBUILD_MODES}, got {rebuild!r}"
            )
        changes = self._changes()
        if self._cached is not None and self._snapshot is not None:
            if not changes:
                return self._keep_cached()
            intervals: "list[tuple[float, float]]" = []
            rects: "list[Rect]" = []
            for _h, old, new in changes:
                for cx, cy, r in filter(None, (old, new)):
                    if r > 0.0:
                        intervals.append((cx - r, cx + r))
                        rects.append(Rect.from_center_radius(cx, cy, r))
            if not intervals:
                # Only degenerate (zero-radius) circles changed: they are
                # dropped from every sweep, so the subdivision is intact.
                return self._keep_cached()
            if len(rects) > _MAX_DIRTY_RECTS:
                box = rects[0]
                for r in rects[1:]:
                    box = box.union_bounds(r)
                rects = [box]
            dirty_rects = [self._to_original_rect(r) for r in rects]
            if mode != "full":
                circles = self.assignment.circles()
                plan = plan_resweep(circles, intervals)
                if plan is not None and not plan.bands:  # pragma: no cover
                    return self._keep_cached()
                take = plan is not None and (
                    mode == "incremental"
                    or plan.dirty_fraction <= self.incremental_threshold
                )
                if take:
                    stats, region_set = resweep_spliced(
                        self._cached.region_set, circles, self.measure, plan
                    )
                    self.incremental_rebuilds += 1
                    return self._finish_rebuild(
                        HeatMapResult(region_set, stats), changes, dirty_rects
                    )
            return self._finish_rebuild(self._full_build(), changes, dirty_rects)
        # First build (or a snapshot-less rebuild): everything is dirty.
        return self._finish_rebuild(self._full_build(), None, None)

    # ------------------------------------------------------------------
    # Dirty-region reporting (for partial cache invalidation)
    # ------------------------------------------------------------------
    def dirty_rects_since(self, version: int) -> "list[Rect] | None":
        """Original-space rectangles that may have changed since ``version``.

        Returns ``[]`` when the caller is already current, a list of rects
        covering every change between ``version`` and ``self.version``, or
        ``None`` when the span cannot be bounded (never built at
        ``version``, a full-unknown rebuild in between, or the log was
        trimmed) — callers must then invalidate everything.
        """
        with self._lock:
            return self._dirty_rects_since_locked(version)

    def _dirty_rects_since_locked(self, version: int) -> "list[Rect] | None":
        if version >= self.version:
            return []
        out: "list[Rect]" = []
        expected = self.version
        for v, rects in reversed(self._dirty_log):
            if v != expected or rects is None:
                return None
            out.extend(rects)
            expected -= 1
            if expected == version:
                return out
        return None

    def heat_at(self, x: float, y: float) -> float:
        """Heat at one point against the current (lazily rebuilt) map."""
        return self.result().heat_at(x, y)

    def rnn_at(self, x: float, y: float) -> frozenset:
        """RNN set at one point against the current (lazily rebuilt) map."""
        return self.result().rnn_at(x, y)

    def heat_at_many(self, points) -> np.ndarray:
        """Vectorized heat for an (n, 2) batch against the current map."""
        return self.result().heat_at_many(points)

    def rnn_at_many(self, points) -> "list[frozenset]":
        """RNN set per query point against the current map."""
        return self.result().rnn_at_many(points)
