"""A heat map that follows a changing world.

Wraps ``DynamicAssignment`` (incremental NN-circle maintenance) with lazy
heat-map rebuilding: updates invalidate the cached result; ``result()``
re-sweeps only when dirty.  The sweep itself is the cheap part (Theorem 2:
O(n log n + r*lambda)); what this class avoids is restarting the NN phase
from scratch after every tick of a moving-client workload.
"""

from __future__ import annotations

import numpy as np

from ..core.heatmap import HeatMapResult
from ..core.sweep_l2 import run_crest_l2
from ..core.sweep_linf import run_crest
from ..errors import AlgorithmUnsupportedError
from ..geometry.metrics import get_metric
from ..geometry.transforms import IDENTITY, ROTATE_L1_TO_LINF
from ..influence.measures import InfluenceMeasure, SizeMeasure
from .assignment import DynamicAssignment

__all__ = ["DynamicHeatMap"]


class DynamicHeatMap:
    """An updatable RNN heat map over moving clients and facilities.

    All update methods take/return stable integer handles and invalidate
    the cached result; ``result()`` rebuilds on demand.

    Note: positions given to updates are in *original* coordinates; the L1
    rotation is applied internally exactly as in ``RNNHeatMap``.
    """

    def __init__(
        self,
        clients: np.ndarray,
        facilities: np.ndarray,
        *,
        metric: str = "l2",
        measure: "InfluenceMeasure | None" = None,
    ) -> None:
        self.metric = get_metric(metric)
        self.measure = measure if measure is not None else SizeMeasure()
        if self.metric.name == "l1":
            self.transform = ROTATE_L1_TO_LINF
            clients = self.transform.forward_array(np.asarray(clients, dtype=float))
            facilities = self.transform.forward_array(np.asarray(facilities, dtype=float))
            internal_metric = "linf"
        else:
            self.transform = IDENTITY
            internal_metric = self.metric
        self.assignment = DynamicAssignment(clients, facilities, internal_metric)
        self._cached: "HeatMapResult | None" = None
        self.rebuilds = 0
        #: Monotone update counter.  Downstream caches (``HeatMapService``)
        #: compare it against the version they last served from, so one
        #: map's updates invalidate only that map's cache entries.
        self.version = 0

    def _point(self, x: float, y: float) -> "tuple[float, float]":
        return self.transform.forward(x, y)

    def _invalidate(self) -> None:
        self._cached = None
        self.version += 1

    # ------------------------------------------------------------------
    # Updates (each invalidates the cache)
    # ------------------------------------------------------------------
    def add_client(self, x: float, y: float) -> int:
        self._invalidate()
        return self.assignment.add_client(*self._point(x, y))

    def remove_client(self, handle: int) -> None:
        self._invalidate()
        self.assignment.remove_client(handle)

    def move_client(self, handle: int, x: float, y: float) -> None:
        self._invalidate()
        self.assignment.move_client(handle, *self._point(x, y))

    def add_facility(self, x: float, y: float) -> int:
        self._invalidate()
        return self.assignment.add_facility(*self._point(x, y))

    def remove_facility(self, handle: int) -> None:
        self._invalidate()
        self.assignment.remove_facility(handle)

    def move_facility(self, handle: int, x: float, y: float) -> None:
        self._invalidate()
        self.assignment.move_facility(handle, *self._point(x, y))

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    @property
    def dirty(self) -> bool:
        return self._cached is None

    def result(self) -> HeatMapResult:
        """The current heat map, rebuilding only if updates occurred."""
        if self._cached is None:
            circles = self.assignment.circles()
            if circles.metric.name == "l2":
                stats, region_set = run_crest_l2(
                    circles, self.measure, transform=self.transform
                )
            elif circles.metric.name == "linf":
                stats, region_set = run_crest(
                    circles, self.measure, transform=self.transform
                )
            else:  # pragma: no cover - construction prevents this
                raise AlgorithmUnsupportedError(circles.metric.name)
            self._cached = HeatMapResult(region_set, stats)
            self.rebuilds += 1
        return self._cached

    def heat_at(self, x: float, y: float) -> float:
        return self.result().heat_at(x, y)

    def rnn_at(self, x: float, y: float) -> frozenset:
        return self.result().rnn_at(x, y)

    def heat_at_many(self, points) -> np.ndarray:
        """Vectorized heat for an (n, 2) batch against the current map."""
        return self.result().heat_at_many(points)

    def rnn_at_many(self, points) -> "list[frozenset]":
        """RNN set per query point against the current map."""
        return self.result().rnn_at_many(points)
